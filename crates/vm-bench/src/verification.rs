//! Verification-accuracy experiments (Figs. 12, 13, 22d, 22e).

use rand::rngs::StdRng;
use rand::SeedableRng;
use viewmap_core::attack::{AttackConfig, GeometricParams, SyntheticViewmap};

/// One cell of an accuracy sweep.
#[derive(Clone, Copy, Debug)]
pub struct AccuracyCell {
    /// x-axis value (hop bucket low edge, or dummy count).
    pub x: usize,
    /// Fake-VP ratio (1.0 = 100%).
    pub fake_ratio: f64,
    /// Verification accuracy over the runs.
    pub accuracy: f64,
    /// Number of runs.
    pub runs: usize,
}

/// The paper's Fig. 12 hop buckets.
pub const HOP_BUCKETS: [(usize, usize); 5] = [(1, 5), (6, 10), (11, 15), (16, 20), (21, 25)];

/// The fake-VP ratios used across Figs. 12/13/22d/22e.
pub const FAKE_RATIOS: [f64; 5] = [1.0, 2.0, 3.0, 4.0, 5.0];

/// Generate a synthetic viewmap whose investigation site is guaranteed to
/// contain at least one legitimate VP (an incident site has witnesses; an
/// empty site would make the run meaningless).
pub fn generate_populated(params: &GeometricParams, rng: &mut StdRng) -> SyntheticViewmap {
    loop {
        let map = SyntheticViewmap::generate(params, rng);
        let site = map.site_members();
        if !site.is_empty() && site.iter().any(|&i| map.legit[i]) {
            return map;
        }
    }
}

/// Accuracy of verification for one attack setting over `runs` random
/// viewmaps.
pub fn accuracy(params: &GeometricParams, attack: &AttackConfig, runs: usize, seed: u64) -> f64 {
    let mut ok = 0usize;
    for r in 0..runs {
        let mut rng = StdRng::seed_from_u64(seed.wrapping_add(r as u64));
        let mut map = generate_populated(params, &mut rng);
        map.inject_attack(attack, &mut rng);
        if map.run_verification().success {
            ok += 1;
        }
    }
    ok as f64 / runs as f64
}

/// Fig. 12 sweep: accuracy vs attacker hop distance × fake ratio.
pub fn fig12_sweep(params: &GeometricParams, attackers: usize, runs: usize) -> Vec<AccuracyCell> {
    let mut out = Vec::new();
    for (bi, &bucket) in HOP_BUCKETS.iter().enumerate() {
        for (ri, &ratio) in FAKE_RATIOS.iter().enumerate() {
            let cfg = AttackConfig {
                n_attackers: attackers,
                attacker_hops: bucket,
                fake_ratio: ratio,
                dummies_per_attacker: 0,
            };
            let seed = 0x12_0000 + (bi * 10 + ri) as u64 * 7919;
            out.push(AccuracyCell {
                x: bucket.0,
                fake_ratio: ratio,
                accuracy: accuracy(params, &cfg, runs, seed),
                runs,
            });
        }
    }
    out
}

/// Fig. 13 / 22e sweep: accuracy vs dummy-VP count × fake ratio
/// (concentration attacks).
pub fn fig13_sweep(
    params: &GeometricParams,
    attackers: usize,
    dummy_counts: &[usize],
    runs: usize,
) -> Vec<AccuracyCell> {
    let mut out = Vec::new();
    for (di, &dummies) in dummy_counts.iter().enumerate() {
        for (ri, &ratio) in FAKE_RATIOS.iter().enumerate() {
            let cfg = AttackConfig {
                n_attackers: attackers,
                attacker_hops: (6, 15),
                fake_ratio: ratio,
                dummies_per_attacker: dummies,
            };
            let seed = 0x13_0000 + (di * 10 + ri) as u64 * 104_729;
            out.push(AccuracyCell {
                x: dummies,
                fake_ratio: ratio,
                accuracy: accuracy(params, &cfg, runs, seed),
                runs,
            });
        }
    }
    out
}

/// Ablation: allow one-way linkage (fakes may forge edges to honest VPs)
/// and measure how verification accuracy collapses — the justification
/// for the two-way Bloom check.
pub fn ablation_one_way(params: &GeometricParams, runs: usize, fake_ratio: f64) -> (f64, f64) {
    let cfg = AttackConfig {
        n_attackers: 10,
        attacker_hops: (6, 15),
        fake_ratio,
        dummies_per_attacker: 0,
    };
    let mut two_way_ok = 0usize;
    let mut one_way_ok = 0usize;
    for r in 0..runs {
        let mut rng = StdRng::seed_from_u64(0xab1a_0000 + r as u64);
        let mut map = generate_populated(params, &mut rng);
        map.inject_attack(&cfg, &mut rng);
        if map.run_verification().success {
            two_way_ok += 1;
        }
        // One-way world: every fake near an honest VP claims (and gets) an
        // edge to it, as a one-way check would allow.
        let mut forged = map.clone();
        forge_one_way_edges(&mut forged);
        if forged.run_verification().success {
            one_way_ok += 1;
        }
    }
    (
        two_way_ok as f64 / runs as f64,
        one_way_ok as f64 / runs as f64,
    )
}

/// Give every fake VP edges to honest VPs within the link radius —
/// simulating a system that only checks one-way Bloom membership
/// (the fake's own filter can claim anything).
pub fn forge_one_way_edges(map: &mut SyntheticViewmap) {
    let mut radius: f64 = 0.0;
    for (i, nbrs) in map.adj.iter().enumerate() {
        for &j in nbrs {
            radius = radius.max(map.pos[i].distance(&map.pos[j]));
        }
    }
    let n = map.adj.len();
    let mut new_edges = Vec::new();
    for fake in 0..n {
        if map.legit[fake] {
            continue;
        }
        for honest in 0..n {
            if !map.legit[honest] {
                continue;
            }
            if map.pos[fake].distance(&map.pos[honest]) <= radius {
                new_edges.push((fake, honest));
            }
        }
    }
    for (a, b) in new_edges {
        if !map.adj[a].contains(&b) {
            map.adj[a].push(b);
            map.adj[b].push(a);
        }
    }
}

/// Ablation: verification accuracy as a function of the damping factor δ
/// (the paper picks 0.8 empirically).
pub fn ablation_damping(
    params: &GeometricParams,
    runs: usize,
    dampings: &[f64],
) -> Vec<(f64, f64)> {
    use viewmap_core::trustrank;
    let cfg = AttackConfig {
        n_attackers: 10,
        attacker_hops: (1, 5),
        fake_ratio: 3.0,
        dummies_per_attacker: 0,
    };
    dampings
        .iter()
        .map(|&d| {
            let mut ok = 0usize;
            for r in 0..runs {
                let mut rng = StdRng::seed_from_u64(0xda_0000 + r as u64);
                let mut map = generate_populated(params, &mut rng);
                map.inject_attack(&cfg, &mut rng);
                let site = map.site_members();
                let v = trustrank::verify_site(&map.adj, &[map.trusted], &site, d);
                let top_ok = v.top.map(|t| map.legit[t]).unwrap_or(false);
                let no_fake = v.legitimate.iter().all(|&i| map.legit[i]);
                if top_ok && no_fake {
                    ok += 1;
                }
            }
            (d, ok as f64 / runs as f64)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_params() -> GeometricParams {
        GeometricParams {
            n_legit: 250,
            area_m: 1800.0,
            link_radius_m: 200.0,
            site_radius_m: 200.0,
            site_distance_m: 1200.0,
        }
    }

    #[test]
    fn distant_attacker_accuracy_is_high() {
        let cfg = AttackConfig {
            n_attackers: 10,
            attacker_hops: (6, 10),
            fake_ratio: 2.0,
            dummies_per_attacker: 0,
        };
        let acc = accuracy(&quick_params(), &cfg, 12, 77);
        assert!(acc >= 0.8, "accuracy {acc}");
    }

    #[test]
    fn one_way_linkage_is_much_worse() {
        let (two, one) = ablation_one_way(&quick_params(), 10, 2.0);
        assert!(two > one, "two-way accuracy {two} must beat one-way {one}");
        assert!(one < 0.5, "one-way forgery should usually win: {one}");
    }

    #[test]
    fn sweeps_produce_full_grids() {
        let cells = fig12_sweep(&quick_params(), 8, 2);
        assert_eq!(cells.len(), HOP_BUCKETS.len() * FAKE_RATIOS.len());
        for c in &cells {
            assert!((0.0..=1.0).contains(&c.accuracy));
        }
    }
}
