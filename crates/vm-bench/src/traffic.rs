//! Traffic-trace experiments (Figs. 21, 22c, 22d, 22e, 22f).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use viewmap_core::attack::{AttackConfig, SyntheticViewmap};
use viewmap_core::types::{GeoPos, MinuteId};
use viewmap_core::viewmap::{Site, Viewmap, ViewmapConfig};
use vm_geo::CityParams;
use vm_mobility::SpeedScenario;
use vm_radio::Environment;
use vm_sim::{run_protocol_sim, SimConfig, SimOutput};

/// A traffic-derived simulation keeping full VPs, sized by `vehicles` and
/// `minutes`.
pub fn traffic_run(vehicles: usize, minutes: u64, speed: SpeedScenario, seed: u64) -> SimOutput {
    let cfg = SimConfig {
        vehicles,
        minutes,
        speed,
        alpha: 0.1,
        environment: Environment::downtown(),
        city: CityParams::seoul_like(),
        keep_vps: true,
        chunk_bytes: 16,
    };
    run_protocol_sim(&cfg, seed)
}

/// Fig. 22c: average contact time per speed scenario.
pub fn contact_times(vehicles: usize, minutes: u64) -> Vec<(String, f64)> {
    let scenarios = [
        SpeedScenario::Fixed(30.0),
        SpeedScenario::Fixed(50.0),
        SpeedScenario::Fixed(70.0),
        SpeedScenario::Mix,
    ];
    scenarios
        .iter()
        .map(|&s| {
            let cfg = SimConfig {
                vehicles,
                minutes,
                speed: s,
                alpha: 0.0, // guards don't affect contacts; skip the cost
                environment: Environment::downtown(),
                city: CityParams::seoul_like(),
                keep_vps: false,
                chunk_bytes: 16,
            };
            let out = run_protocol_sim(&cfg, 22);
            (s.label(), out.avg_contact_s)
        })
        .collect()
}

/// Build a per-minute viewmap over the whole simulated area from a traffic
/// run (vehicle 0's actual VP doubles as the trusted seed).
pub fn traffic_viewmap(out: &SimOutput, minute: usize) -> Viewmap {
    let record = &out.minutes[minute];
    let mut vps = record.vps.clone().expect("traffic_run keeps VPs");
    vps[record.actual_idx[0]].trusted = true;
    let site = Site {
        center: GeoPos::new(4000.0, 4000.0),
        radius_m: 40_000.0, // cover everything: study the whole graph
    };
    Viewmap::build_owned(
        vps,
        site,
        MinuteId(minute as u64),
        &ViewmapConfig::default(),
    )
}

/// Fig. 22f: percentage of viewmap member VPs with at least one viewlink,
/// per speed scenario.
pub fn membership_percentages(vehicles: usize, minutes: u64) -> Vec<(String, f64)> {
    let scenarios = [
        SpeedScenario::Fixed(30.0),
        SpeedScenario::Fixed(50.0),
        SpeedScenario::Fixed(70.0),
        SpeedScenario::Mix,
    ];
    scenarios
        .iter()
        .map(|&s| {
            let out = traffic_run(vehicles, minutes, s, 31);
            let vm = traffic_viewmap(&out, minutes as usize - 1);
            (s.label(), vm.member_connectivity() * 100.0)
        })
        .collect()
}

/// Convert a traffic-derived viewmap into the attack testbed form
/// (positions = VP start locations, all ground-truth legitimate), with a
/// site placed on a random member VP's trajectory.
pub fn to_attack_map(vm: &Viewmap, site_radius_m: f64, rng: &mut StdRng) -> SyntheticViewmap {
    let pos: Vec<GeoPos> = vm.vps.iter().map(|vp| vp.start_loc()).collect();
    // Site on a random non-trusted member's position.
    let candidates: Vec<usize> = (0..vm.vps.len()).filter(|i| !vm.vps[*i].trusted).collect();
    let center = pos[candidates[rng.gen_range(0..candidates.len())]];
    SyntheticViewmap {
        adj: vm.adj.clone(),
        pos,
        legit: vec![true; vm.vps.len()],
        trusted: vm.trusted.first().copied().unwrap_or(0),
        site_center: center,
        site_radius_m,
    }
}

/// Figs. 22d/22e: verification accuracy on traffic-derived viewmaps.
pub fn traffic_accuracy(vm: &Viewmap, attack: &AttackConfig, runs: usize, seed: u64) -> f64 {
    let mut ok = 0usize;
    let mut done = 0usize;
    let mut r = 0u64;
    while done < runs {
        let mut rng = StdRng::seed_from_u64(seed + r);
        r += 1;
        let mut map = to_attack_map(vm, 200.0, &mut rng);
        let site = map.site_members();
        if site.is_empty() || !site.iter().any(|&i| map.legit[i]) {
            continue; // empty site: re-draw (incidents have witnesses)
        }
        map.inject_attack(attack, &mut rng);
        if map.run_verification().success {
            ok += 1;
        }
        done += 1;
        if r > runs as u64 * 20 {
            break; // safety against degenerate maps
        }
    }
    if done == 0 {
        return 0.0;
    }
    ok as f64 / done as f64
}

/// Fig. 21: render the viewmap's viewlink density as an ASCII grid.
pub fn render_ascii(vm: &Viewmap, cols: usize, rows: usize, extent_m: f64) -> String {
    let mut counts = vec![0usize; cols * rows];
    for (i, nbrs) in vm.adj.iter().enumerate() {
        for &j in nbrs {
            if j < i {
                continue;
            }
            let a = vm.vps[i].start_loc();
            let b = vm.vps[j].start_loc();
            let mx = ((a.x + b.x) / 2.0 / extent_m * cols as f64) as usize;
            let my = ((a.y + b.y) / 2.0 / extent_m * rows as f64) as usize;
            if mx < cols && my < rows {
                counts[my * cols + mx] += 1;
            }
        }
    }
    let glyphs = [' ', '.', ':', '+', '*', '#'];
    let mut out = String::new();
    for row in (0..rows).rev() {
        for col in 0..cols {
            let c = counts[row * cols + col];
            let g = glyphs[c.min(glyphs.len() - 1)];
            out.push(g);
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn traffic_viewmap_has_edges() {
        let out = traffic_run(80, 2, SpeedScenario::Fixed(50.0), 5);
        let vm = traffic_viewmap(&out, 1);
        assert!(vm.len() >= 80);
        assert!(vm.edge_count() > 0, "traffic viewmap should have links");
        assert!(vm.member_connectivity() > 0.3);
    }

    #[test]
    fn ascii_render_is_shaped() {
        let out = traffic_run(60, 1, SpeedScenario::Mix, 6);
        let vm = traffic_viewmap(&out, 0);
        let art = render_ascii(&vm, 40, 12, 8000.0);
        assert_eq!(art.lines().count(), 12);
        assert!(art.lines().all(|l| l.chars().count() == 40));
    }
}
