//! Experiment harness: regenerates every table and figure of the paper's
//! evaluation, plus the scaling benchmarks and determinism suites the
//! grown system is held to.
//!
//! # Paper artifacts
//!
//! Each binary in `src/bin/` prints a CSV (with `#`-prefixed header
//! comments) for one table or figure (`fig8_hashing` …
//! `table2_scenarios`); the heavy lifting lives here so the Criterion
//! benches and the binaries share code. Experiments honor the
//! `VM_SCALE` environment variable (default 1.0) as a multiplier on
//! trial counts, so `VM_SCALE=0.1 cargo run --bin
//! fig12_verification_position` gives a quick smoke pass and
//! `VM_SCALE=10` approaches the paper's 1000-run cells.
//!
//! # Scaling benchmarks
//!
//! `bench_investigate` (see its binary docs) times the end-to-end
//! investigation hot path at 1k/10k/100k VPs — single/batch/durable/
//! networked ingest, sequential and parallel viewmap builds with a
//! per-phase profile, TrustRank verify, upload lookup — against
//! retained naive baselines, asserting all paths build identical
//! viewmaps, and writes `BENCH_investigate.json` (committed at the
//! repo root as the recorded performance trajectory; CI gates on its
//! ratios).
//!
//! # Determinism suites
//!
//! `tests/parallel_equivalence.rs` is the harness holding the parallel
//! engines to their sequential semantics: any thread count, batch
//! ingest vs sequential submits, exhaustive O(n²) oracles, and a
//! fixed-seed 100k topology pin (edge count + checksum + sampled
//! adjacency) that runs in release CI.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod investigate;
pub mod misc;
pub mod privacy_exp;
pub mod traffic;
pub mod verification;
pub mod worlds;

/// Trial-count scale factor from `VM_SCALE` (default 1.0, clamped to
/// `[0.01, 100]`).
pub fn scale() -> f64 {
    std::env::var("VM_SCALE")
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .unwrap_or(1.0)
        .clamp(0.01, 100.0)
}

/// `n` scaled by [`scale`], at least `min`.
pub fn scaled(n: usize, min: usize) -> usize {
    ((n as f64 * scale()).round() as usize).max(min)
}

/// Print a `#`-prefixed header line followed by a CSV header row.
pub fn csv_header(title: &str, columns: &[&str]) {
    println!("# {title}");
    println!("{}", columns.join(","));
}
