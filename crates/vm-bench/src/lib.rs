//! Experiment harness: regenerates every table and figure of the paper's
//! evaluation.
//!
//! Each binary in `src/bin/` prints a CSV (with `#`-prefixed header
//! comments) for one table or figure; the heavy lifting lives here so the
//! Criterion benches and the binaries share code.
//!
//! Scaling: experiments honor the `VM_SCALE` environment variable
//! (default 1.0) as a multiplier on trial counts, so
//! `VM_SCALE=0.1 cargo run --bin fig12_verification_position` gives a
//! quick smoke pass and `VM_SCALE=10` approaches the paper's 1000-run
//! cells.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod investigate;
pub mod misc;
pub mod privacy_exp;
pub mod traffic;
pub mod verification;

/// Trial-count scale factor from `VM_SCALE` (default 1.0, clamped to
/// `[0.01, 100]`).
pub fn scale() -> f64 {
    std::env::var("VM_SCALE")
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .unwrap_or(1.0)
        .clamp(0.01, 100.0)
}

/// `n` scaled by [`scale`], at least `min`.
pub fn scaled(n: usize, min: usize) -> usize {
    ((n as f64 * scale()).round() as usize).max(min)
}

/// Print a `#`-prefixed header line followed by a CSV header row.
pub fn csv_header(title: &str, columns: &[&str]) {
    println!("# {title}");
    println!("{}", columns.join(","));
}
