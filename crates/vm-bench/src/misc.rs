//! Micro experiments: hashing (Fig. 8), VP volume (Fig. 9), Bloom false
//! linkage (Fig. 14), plate blurring (Table 1), storage (§6.1).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;
use viewmap_core::types::GeoPos;
use viewmap_core::vd::{flat_digest, VdChain};
use vm_vision::{BlurPipeline, SyntheticScene};

/// Fig. 8 row: per-second digest cost at recording time `t`.
#[derive(Clone, Copy, Debug)]
pub struct HashTimings {
    /// Recording second (1..=60).
    pub second: usize,
    /// Cascaded per-second digest cost, ms (avg over repeats).
    pub cascade_avg_ms: f64,
    /// Cascaded worst case, ms.
    pub cascade_worst_ms: f64,
    /// Whole-prefix re-hash cost, ms (avg).
    pub flat_avg_ms: f64,
    /// Whole-prefix worst case, ms.
    pub flat_worst_ms: f64,
}

/// Fig. 8: cascaded vs flat hashing for a `video_mb` MB 1-minute video.
pub fn hash_generation_times(video_mb: usize, repeats: usize) -> Vec<HashTimings> {
    let chunk_len = video_mb * 1024 * 1024 / 60;
    let mut rng = StdRng::seed_from_u64(8);
    let chunk: Vec<u8> = (0..chunk_len).map(|_| rng.gen()).collect();
    let mut out = Vec::new();
    for &second in &[1usize, 10, 20, 30, 40, 50, 60] {
        // Cascaded: cost of extending by one chunk at `second`.
        let mut cas: Vec<f64> = Vec::new();
        for _ in 0..repeats {
            let mut chain = VdChain::new([1u8; 8], 0, GeoPos::new(0.0, 0.0));
            for _ in 0..second - 1 {
                chain.extend(&chunk[..64.min(chunk.len())], GeoPos::new(0.0, 0.0));
            }
            let t = Instant::now();
            chain.extend(&chunk, GeoPos::new(0.0, 0.0));
            cas.push(t.elapsed().as_secs_f64() * 1000.0);
        }
        // Flat: hash the whole prefix of `second` chunks.
        let prefix = vec![0u8; chunk_len * second];
        let mut flat: Vec<f64> = Vec::new();
        for _ in 0..repeats {
            let t = Instant::now();
            std::hint::black_box(flat_digest(&prefix));
            flat.push(t.elapsed().as_secs_f64() * 1000.0);
        }
        out.push(HashTimings {
            second,
            cascade_avg_ms: avg(&cas),
            cascade_worst_ms: max(&cas),
            flat_avg_ms: avg(&flat),
            flat_worst_ms: max(&flat),
        });
    }
    out
}

fn avg(v: &[f64]) -> f64 {
    v.iter().sum::<f64>() / v.len() as f64
}

fn max(v: &[f64]) -> f64 {
    v.iter().cloned().fold(0.0, f64::max)
}

/// Table 1 measurement on the host: mean per-stage times over `frames`
/// 640×480 frames with 0–3 plates each.
pub fn blur_benchmark(frames: usize) -> (f64, f64, f64) {
    let mut rng = StdRng::seed_from_u64(1);
    let mut pipe = BlurPipeline::new();
    let mut blur = 0.0;
    let mut io = 0.0;
    let mut total = 0.0;
    for i in 0..frames {
        let scene = SyntheticScene::generate(&mut rng, 640, 480, i % 4);
        let (_, t) = pipe.process(&scene.frame.data, 640, 480);
        blur += t.blur_ms;
        io += t.io_ms();
        total += t.total_ms();
    }
    (
        blur / frames as f64,
        io / frames as f64,
        1000.0 / (total / frames as f64),
    )
}

/// Empirical false-linkage probe for our Bloom configuration: `trials`
/// pairs of *unrelated* VPs, each with `n_neighbors` random insertions,
/// checked with the full two-way 60-VD query the server runs.
pub fn empirical_false_linkage(n_neighbors: usize, trials: usize, seed: u64) -> f64 {
    use viewmap_core::vp::{VpBuilder, VpKind};
    let mut rng = StdRng::seed_from_u64(seed);
    let mut hits = 0usize;
    for _ in 0..trials {
        let mut mk = |y: f64| {
            let mut b = VpBuilder::new(&mut rng, 0, GeoPos::new(0.0, y), VpKind::Actual);
            for s in 0..60u64 {
                b.record_second(&s.to_le_bytes(), GeoPos::new(s as f64, y));
            }
            let mut fin = b.finalize();
            // Fill the bloom with `n_neighbors` unrelated VD keys
            // (2 per neighbor, as the protocol stores first+last).
            for _ in 0..n_neighbors * 2 {
                let mut key = [0u8; 16];
                rng.fill(&mut key);
                fin.profile.bloom.insert(&vm_crypto::Digest16(key));
            }
            fin.profile.into_stored()
        };
        let a = mk(0.0);
        let b = mk(10.0);
        if a.mutually_linked(&b) {
            hits += 1;
        }
    }
    hits as f64 / trials as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cascade_is_flat_in_time_flat_is_linear() {
        let rows = hash_generation_times(6, 2); // 6 MB to keep tests quick
        let first = &rows[0];
        let last = rows.last().unwrap();
        // Flat cost grows ~linearly with the prefix; cascade stays flat.
        assert!(
            last.flat_avg_ms > first.flat_avg_ms * 5.0,
            "flat: {} -> {}",
            first.flat_avg_ms,
            last.flat_avg_ms
        );
        assert!(
            last.cascade_avg_ms < first.cascade_avg_ms * 5.0 + 2.0,
            "cascade: {} -> {}",
            first.cascade_avg_ms,
            last.cascade_avg_ms
        );
    }

    #[test]
    fn blur_benchmark_reports_sane_numbers() {
        let (blur_ms, io_ms, fps) = blur_benchmark(3);
        assert!(blur_ms > 0.0 && io_ms > 0.0 && fps > 0.0);
    }

    #[test]
    fn false_linkage_low_at_design_density() {
        let p = empirical_false_linkage(50, 300, 9);
        assert!(p < 0.02, "false linkage {p}");
    }
}
