//! Offline drop-in subset of `parking_lot`: poison-free `RwLock` / `Mutex`
//! built on the std primitives (the registry is unreachable in this build
//! environment). Lock poisoning is absorbed — a panic while holding a lock
//! does not wedge every later reader, matching parking_lot semantics.

#![forbid(unsafe_code)]

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// Reader-writer lock with parking_lot's unwrap-free API.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Wrap a value.
    pub fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(poison) => poison.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.0.read() {
            Ok(g) => g,
            Err(poison) => poison.into_inner(),
        }
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.0.write() {
            Ok(g) => g,
            Err(poison) => poison.into_inner(),
        }
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(poison) => poison.into_inner(),
        }
    }
}

/// Mutual-exclusion lock with parking_lot's unwrap-free API.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Wrap a value.
    pub fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(poison) => poison.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.0.lock() {
            Ok(g) => g,
            Err(poison) => poison.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(5usize);
        assert_eq!(*l.read(), 5);
        *l.write() += 1;
        assert_eq!(*l.read(), 6);
        assert_eq!(l.into_inner(), 6);
    }

    #[test]
    fn shared_across_threads() {
        let l = Arc::new(RwLock::new(0usize));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let l = Arc::clone(&l);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        *l.write() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*l.read(), 8000);
    }

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(m.into_inner(), 2);
    }
}
