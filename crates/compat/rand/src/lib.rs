//! Offline drop-in subset of the `rand` crate (0.8-style API).
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the small slice of `rand` it actually uses: the [`Rng`] trait
//! (`gen`, `gen_bool`, `gen_range`, `fill`), [`SeedableRng::seed_from_u64`],
//! and a deterministic [`rngs::StdRng`] built on xoshiro256++ seeded via
//! SplitMix64. Statistical quality is more than adequate for the protocol
//! simulations and property tests in this repository; nothing here is
//! cryptographic.

#![forbid(unsafe_code)]

/// Low-level source of randomness.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Deterministic construction from seeds.
pub trait SeedableRng: Sized {
    /// Seed type (fixed byte array for the concrete generators here).
    type Seed;

    /// Build from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Build from a single `u64` (expanded via SplitMix64).
    fn seed_from_u64(state: u64) -> Self;
}

/// Types producible by [`Rng::gen`] (the `Standard` distribution).
pub trait Standard: Sized {
    /// Draw one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_uint {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_uint!(u8, u16, u32, u64, usize);

impl Standard for u128 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl<const N: usize> Standard for [u8; N] {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        let mut out = [0u8; N];
        rng.fill_bytes(&mut out);
        out
    }
}

/// Types samplable uniformly from a range.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform draw from `[lo, hi)`.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
    /// Uniform draw from `[lo, hi]`.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "cannot sample empty range");
                let span = (hi as $u).wrapping_sub(lo as $u);
                // Modulo bias is < span/2^64 — irrelevant for simulation use.
                let v = if span == 0 { rng.next_u64() as $u } else { (rng.next_u64() as $u) % span };
                lo.wrapping_add(v as $t)
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as $u).wrapping_sub(lo as $u).wrapping_add(1);
                let v = if span == 0 { rng.next_u64() as $u } else { (rng.next_u64() as $u) % span };
                lo.wrapping_add(v as $t)
            }
        }
    )*};
}
impl_sample_uniform_int!(
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => u64, i16 => u64, i32 => u64, i64 => u64, isize => u64
);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "cannot sample empty range");
                let unit = <$t as Standard>::sample(rng);
                lo + unit * (hi - lo)
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "cannot sample empty range");
                let unit = <$t as Standard>::sample(rng);
                lo + unit * (hi - lo)
            }
        }
    )*};
}
impl_sample_uniform_float!(f32, f64);

/// Ranges accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(rng, *self.start(), *self.end())
    }
}

/// Buffers fillable by [`Rng::fill`].
pub trait Fill {
    /// Overwrite `self` with random data.
    fn fill_from<R: RngCore + ?Sized>(&mut self, rng: &mut R);
}

impl Fill for [u8] {
    fn fill_from<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        rng.fill_bytes(self);
    }
}

impl<const N: usize> Fill for [u8; N] {
    fn fill_from<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        rng.fill_bytes(self);
    }
}

/// The user-facing random-value API (blanket-implemented over [`RngCore`]).
pub trait Rng: RngCore {
    /// Draw a value of type `T` from the standard distribution.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Bernoulli draw: `true` with probability `p` (clamped to [0, 1]).
    fn gen_bool(&mut self, p: f64) -> bool {
        <f64 as Standard>::sample(self) < p
    }

    /// Uniform draw from `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_from(self)
    }

    /// Fill `dest` with random data.
    fn fill<T: Fill + ?Sized>(&mut self, dest: &mut T) {
        dest.fill_from(self);
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Concrete generators.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator (stand-in for rand's `StdRng`).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(&seed[i * 8..(i + 1) * 8]);
                *word = u64::from_le_bytes(b);
            }
            if s == [0, 0, 0, 0] {
                s = [0x9e3779b97f4a7c15, 1, 2, 3];
            }
            StdRng { s }
        }

        fn seed_from_u64(mut state: u64) -> Self {
            let mut s = [0u64; 4];
            for word in s.iter_mut() {
                *word = splitmix64(&mut state);
            }
            StdRng { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(-5i32..=5);
            assert!((-5..=5).contains(&w));
            let f = rng.gen_range(-2.0f64..2.0);
            assert!((-2.0..2.0).contains(&f));
        }
    }

    #[test]
    fn unit_f64_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(9);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.25)).count();
        let rate = hits as f64 / 100_000.0;
        assert!((rate - 0.25).abs() < 0.01, "rate {rate}");
    }

    #[test]
    fn fill_covers_remainders() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut buf = [0u8; 13];
        rng.fill(&mut buf[..]);
        assert!(buf.iter().any(|&b| b != 0));
        let mut arr = [0u8; 8];
        rng.fill(&mut arr);
        assert!(arr.iter().any(|&b| b != 0));
    }
}
