//! Offline drop-in subset of the `proptest` property-testing API.
//!
//! The registry is unreachable in this build environment, so this crate
//! implements the slice of proptest the workspace's property tests use:
//! the [`proptest!`] macro, [`any`], range and tuple strategies, and
//! [`collection::vec`]. Each property runs a fixed number of cases
//! ([`test_runner::CASES`]) from a deterministic per-test seed (FNV-1a of
//! the test name), so failures are reproducible run to run. There is no
//! shrinking: a failing case panics with the values that produced it left
//! to the assertion message.

#![forbid(unsafe_code)]

/// Strategy trait and implementations for ranges, tuples, and arrays.
pub mod strategy {
    use crate::test_runner::TestRng;
    use rand::Rng;

    /// A recipe for generating random values of one type.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draw one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;

        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            (**self).sample(rng)
        }
    }

    impl<T: rand::SampleUniform> Strategy for std::ops::Range<T> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            rng.rng.gen_range(self.start..self.end)
        }
    }

    impl<T: rand::SampleUniform> Strategy for std::ops::RangeInclusive<T> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            rng.rng.gen_range(*self.start()..=*self.end())
        }
    }

    macro_rules! impl_range_from {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::RangeFrom<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    rng.rng.gen_range(self.start..=<$t>::MAX)
                }
            }
        )*};
    }
    impl_range_from!(u8, u16, u32, u64, usize, i32, i64);

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident/$idx:tt),+)),+) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        )+};
    }
    impl_tuple_strategy!(
        (A / 0, B / 1),
        (A / 0, B / 1, C / 2),
        (A / 0, B / 1, C / 2, D / 3)
    );

    /// Types with a canonical "anything goes" strategy (see [`crate::any`]).
    pub trait Arbitrary: Sized {
        /// Draw one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_via_gen {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.rng.gen()
                }
            }
        )*};
    }
    impl_arbitrary_via_gen!(u8, u16, u32, u64, u128, usize, bool, f32, f64);

    macro_rules! impl_arbitrary_signed {
        ($($t:ty as $u:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.rng.gen::<$u>() as $t
                }
            }
        )*};
    }
    impl_arbitrary_signed!(i8 as u8, i16 as u16, i32 as u32, i64 as u64);

    impl<const N: usize> Arbitrary for [u8; N] {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.rng.gen()
        }
    }

    /// The strategy returned by [`crate::any`].
    pub struct Any<T>(std::marker::PhantomData<T>);

    impl<T> Default for Any<T> {
        fn default() -> Self {
            Any(std::marker::PhantomData)
        }
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }
}

/// Strategies over collections.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;

    /// Strategy for `Vec<S::Value>` with length drawn from a range.
    pub struct VecStrategy<S> {
        element: S,
        len: std::ops::Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let n = rng.rng.gen_range(self.len.start..self.len.end);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// A vector strategy: `len` elements drawn from `element`.
    pub fn vec<S: Strategy>(element: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
        assert!(!len.is_empty(), "empty length range");
        VecStrategy { element, len }
    }
}

/// Deterministic case driver used by the [`proptest!`] macro expansion.
pub mod test_runner {
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Number of cases each property runs.
    pub const CASES: usize = 64;

    /// Per-test deterministic RNG.
    pub struct TestRng {
        pub(crate) rng: StdRng,
    }

    impl TestRng {
        /// Seed from the test's name so every run replays the same cases.
        pub fn deterministic(name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng {
                rng: StdRng::seed_from_u64(h),
            }
        }
    }
}

/// The canonical strategy for a type: uniform over its value space.
pub fn any<T: strategy::Arbitrary>() -> strategy::Any<T> {
    strategy::Any::default()
}

/// Everything a property-test module usually imports.
pub mod prelude {
    pub use crate::any;
    pub use crate::strategy::Strategy;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Define property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running [`test_runner::CASES`] sampled cases.
#[macro_export]
macro_rules! proptest {
    ($($(#[$attr:meta])* fn $name:ident($($arg:pat in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$attr])*
            fn $name() {
                let mut prop_rng =
                    $crate::test_runner::TestRng::deterministic(stringify!($name));
                for _case in 0..$crate::test_runner::CASES {
                    $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut prop_rng);)*
                    $body
                }
            }
        )*
    };
}

/// Assert a property holds (panics with the failing values in scope).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Assert two expressions are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Assert two expressions are unequal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(a in 3usize..10, b in 0u64..1_000_000, f in 0.5f64..2.0) {
            prop_assert!((3..10).contains(&a));
            prop_assert!(b < 1_000_000);
            prop_assert!((0.5..2.0).contains(&f));
        }

        #[test]
        fn vectors_respect_length(v in crate::collection::vec(any::<u8>(), 1..50)) {
            prop_assert!(!v.is_empty() && v.len() < 50);
        }

        #[test]
        fn nested_and_tuples(
            m in crate::collection::vec(crate::collection::vec(any::<u8>(), 1..8), 1..5),
            p in (0.0f64..10.0, 0.0f64..10.0),
            s in any::<[u8; 8]>(),
            d in 1u64..,
        ) {
            prop_assert!(m.len() < 5 && m.iter().all(|row| row.len() < 8));
            prop_assert!(p.0 < 10.0 && p.1 < 10.0);
            prop_assert_eq!(s.len(), 8);
            prop_assert_ne!(d, 0);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut r1 = crate::test_runner::TestRng::deterministic("x");
        let mut r2 = crate::test_runner::TestRng::deterministic("x");
        let s = 0usize..100;
        for _ in 0..32 {
            assert_eq!(s.sample(&mut r1), s.sample(&mut r2));
        }
    }
}
