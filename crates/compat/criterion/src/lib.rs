//! Offline drop-in subset of the `criterion` benchmarking API.
//!
//! The registry is unreachable in this build environment, so this crate
//! provides just enough of criterion's surface for the workspace's bench
//! targets to compile and produce useful wall-clock numbers: warmup plus a
//! fixed measurement loop, median-of-samples reporting, no statistics
//! engine. Output is one line per benchmark:
//! `bench <id> ... median <t> (<samples> samples)`.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// How batched inputs are sized (accepted for API compatibility; the
/// simplified runner treats every variant the same).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration setup output.
    SmallInput,
    /// Large per-iteration setup output.
    LargeInput,
    /// One setup per measurement batch.
    PerIteration,
}

/// Identifier for a parameterized benchmark.
#[derive(Clone, Debug)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId(format!("{}/{}", name.into(), parameter))
    }

    /// Just the parameter (criterion prefixes the group name when printing).
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    samples: usize,
    median_ns: u128,
}

impl Bencher {
    fn new(samples: usize) -> Self {
        Bencher {
            samples,
            median_ns: 0,
        }
    }

    fn record(&mut self, mut sample: impl FnMut() -> Duration) {
        // One warmup sample, then `samples` measured ones.
        let _ = sample();
        let mut times: Vec<u128> = (0..self.samples).map(|_| sample().as_nanos()).collect();
        times.sort_unstable();
        self.median_ns = times[times.len() / 2];
    }

    /// Measure `routine` repeatedly.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        self.record(|| {
            let start = Instant::now();
            let out = routine();
            let elapsed = start.elapsed();
            std::hint::black_box(&out);
            elapsed
        });
    }

    /// Measure `routine` over fresh inputs from `setup` (setup untimed).
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        self.record(|| {
            let input = setup();
            let start = Instant::now();
            let out = routine(input);
            let elapsed = start.elapsed();
            std::hint::black_box(&out);
            elapsed
        });
    }
}

fn fmt_ns(ns: u128) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.3} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} µs", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

const DEFAULT_SAMPLES: usize = 10;

/// Top-level benchmark driver.
pub struct Criterion {
    samples: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            samples: DEFAULT_SAMPLES,
        }
    }
}

impl Criterion {
    /// Run one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        run_one(id, self.samples, f);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.to_string(),
            samples: DEFAULT_SAMPLES,
        }
    }
}

fn run_one<F: FnMut(&mut Bencher)>(id: &str, samples: usize, mut f: F) {
    let mut b = Bencher::new(samples);
    f(&mut b);
    println!(
        "bench {id} ... median {} ({} samples)",
        fmt_ns(b.median_ns),
        samples
    );
}

/// A group of benchmarks sharing a name prefix and sample count.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    samples: usize,
}

impl BenchmarkGroup<'_> {
    /// Set the per-benchmark sample count.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(2);
        self
    }

    /// Run one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, f: F) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id), self.samples, f);
        self
    }

    /// Run one parameterized benchmark in the group.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id), self.samples, |b| {
            f(b, input)
        });
        self
    }

    /// Finish the group (no-op; for API compatibility).
    pub fn finish(self) {}
}

/// Re-export of `std::hint::black_box` under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Define a function running a list of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Define `main` running one or more benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion::default();
        c.bench_function("spin", |b| b.iter(|| (0..1000u64).sum::<u64>()));
        let mut g = c.benchmark_group("grp");
        g.sample_size(3);
        g.bench_function("inner", |b| {
            b.iter_batched(|| vec![1u8; 64], |v| v.len(), BatchSize::SmallInput)
        });
        g.bench_with_input(BenchmarkId::from_parameter(7), &7usize, |b, &n| {
            b.iter(|| n * 2)
        });
        g.finish();
    }

    #[test]
    fn id_formats() {
        assert_eq!(BenchmarkId::new("a", 3).to_string(), "a/3");
        assert_eq!(BenchmarkId::from_parameter("x").to_string(), "x");
    }
}
