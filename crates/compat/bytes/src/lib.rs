//! Offline drop-in subset of the `bytes` crate: the [`Buf`] / [`BufMut`]
//! cursor traits implemented over plain slices, which is all the wire
//! codecs in this workspace use (the registry is unreachable here).
//!
//! As in the real crate, reading from `&[u8]` and writing to `&mut [u8]`
//! advance the slice in place, so a codec can end with
//! `debug_assert!(buf.is_empty())` to prove it consumed exactly the frame.

#![forbid(unsafe_code)]

/// Cursor-style reader over a byte source.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// Copy `dst.len()` bytes out, advancing the cursor.
    fn copy_to_slice(&mut self, dst: &mut [u8]);

    /// Read one byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    /// Read a little-endian `u16`.
    fn get_u16_le(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_le_bytes(b)
    }

    /// Read a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    /// Read a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.len() >= dst.len(), "buffer underflow");
        let (head, tail) = self.split_at(dst.len());
        dst.copy_from_slice(head);
        *self = tail;
    }
}

/// Cursor-style writer into a byte sink.
pub trait BufMut {
    /// Bytes of room left to write.
    fn remaining_mut(&self) -> usize;

    /// Write `src`, advancing the cursor.
    fn put_slice(&mut self, src: &[u8]);

    /// Write one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Write a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Write a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Write a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for &mut [u8] {
    fn remaining_mut(&self) -> usize {
        self.len()
    }

    fn put_slice(&mut self, src: &[u8]) {
        assert!(self.len() >= src.len(), "buffer overflow");
        let (head, tail) = std::mem::take(self).split_at_mut(src.len());
        head.copy_from_slice(src);
        *self = tail;
    }
}

impl BufMut for Vec<u8> {
    fn remaining_mut(&self) -> usize {
        usize::MAX - self.len()
    }

    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slice_write_then_read_roundtrip() {
        let mut out = [0u8; 14];
        let mut w = &mut out[..];
        w.put_u16_le(0xbeef);
        w.put_u32_le(7);
        w.put_u64_le(u64::MAX - 1);
        assert!(w.is_empty());

        let mut r = &out[..];
        assert_eq!(r.get_u16_le(), 0xbeef);
        assert_eq!(r.get_u32_le(), 7);
        assert_eq!(r.get_u64_le(), u64::MAX - 1);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn copy_to_slice_advances() {
        let data = [1u8, 2, 3, 4, 5];
        let mut r = &data[..];
        let mut head = [0u8; 2];
        r.copy_to_slice(&mut head);
        assert_eq!(head, [1, 2]);
        assert_eq!(r, &[3, 4, 5]);
    }

    #[test]
    fn vec_sink_grows() {
        let mut v = Vec::new();
        v.put_u8(1);
        v.put_u16_le(2);
        assert_eq!(v, vec![1, 2, 0]);
    }

    #[test]
    #[should_panic(expected = "buffer overflow")]
    fn overflow_panics() {
        let mut out = [0u8; 2];
        let mut w = &mut out[..];
        w.put_u32_le(1);
    }
}
