//! The concurrent TCP front-end: accept loop + bounded worker pool over
//! a shared [`ViewMapServer`].
//!
//! # Threading model
//!
//! [`VmService::spawn`] binds a listener and starts one supervisor OS
//! thread. The supervisor fans out through the same
//! [`viewmap_core::par`] scoped-thread helper every parallel engine in
//! the workspace rides: role 0 runs the accept loop, roles `1..=workers`
//! run session workers. Accepted connections land in a bounded queue;
//! each worker pops one and serves it to completion (frames on one
//! connection are processed serially, so per-session request order is
//! preserved and replies never interleave). Sessions are therefore
//! worker-bound: size `workers` to the number of simultaneously-live
//! uploader/investigator sessions you expect — idle keep-alive
//! connections hold a worker.
//!
//! # Pipelined-submit coalescing
//!
//! Uploader vehicles pipeline: they write many `SUBMIT` frames before
//! reading any reply. The session loop exploits that — after decoding a
//! `SUBMIT` it keeps draining frames as long as more bytes are already
//! buffered (up to [`ServiceConfig::max_coalesce`]), and commits every
//! consecutive submit in one
//! [`ViewMapServer::submit_batch_warm`] call. The network path thus
//! rides the same per-(minute, batch) stripe locking and parallel
//! link-key precompute the in-process batch API gets, while each frame
//! still receives its own per-item reply in order. State is
//! indistinguishable from sequential submits (the batch-equivalence
//! property the core suite pins).
//!
//! # Shutdown
//!
//! [`ServiceHandle::shutdown`] (also run on drop) sets the shutdown
//! flag, wakes the acceptor with a loopback connect, closes every live
//! session socket (`TcpStream::shutdown`), and joins the supervisor.
//! In-flight frames finish or fail their read; no new connections are
//! admitted.

use crate::proto::{ErrorCode, Frame, Reply, Request, OP_STATS, OP_SUBMIT};
use crate::role::{Role, RoleCell};
use std::collections::VecDeque;
use std::io::{BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use viewmap_core::server::ViewMapServer;
use viewmap_core::upload::AnonymousSubmission;
use vm_obs::{Counter, Gauge, Histogram};

// The service shares one `ViewMapServer` across every worker thread;
// this is the compile-time audit that the server (incl. its boxed WAL)
// actually crosses threads. `viewmap_core` asserts the same on its side.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<ViewMapServer>();
};

/// Tuning knobs for [`VmService::spawn`].
#[derive(Clone, Copy, Debug)]
pub struct ServiceConfig {
    /// Session worker threads (= maximum simultaneously-served
    /// connections). Default 8.
    pub workers: usize,
    /// Maximum pipelined `SUBMIT` frames coalesced into one
    /// `submit_batch_warm` call. Default 1024.
    pub max_coalesce: usize,
    /// Maximum accepted-but-unclaimed connections. Beyond it the
    /// acceptor closes new connections immediately (a clean reset the
    /// client can retry) instead of letting a flood grow the queue —
    /// and the process's open-fd count — without bound. Default 1024.
    pub max_backlog: usize,
    /// Reap a session whose socket delivers no bytes for this long.
    /// Sessions are worker-bound, so a leaked keep-alive connection
    /// pins a pool worker forever without a deadline; with one, the
    /// blocked read returns, the session closes cleanly (buffered
    /// replies are flushed first), and the worker moves on. The timer
    /// is per `read(2)` call — any delivered byte resets it — so a
    /// slow-but-active uploader is never reaped mid-stream. `None`
    /// (the default) keeps today's block-forever behavior.
    pub idle_timeout: Option<std::time::Duration>,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            workers: 8,
            max_coalesce: 1024,
            max_backlog: 1024,
            idle_timeout: None,
        }
    }
}

/// Human-readable `op` label for each request opcode, indexed by
/// `opcode - 1` (opcodes are assigned densely from `0x01`).
const OPCODE_LABELS: [&str; OP_STATS as usize] = [
    "submit",
    "submit_batch",
    "investigate",
    "solicit",
    "upload_video",
    "claim_reward",
    "blind_sign",
    "redeem",
    "public_key",
    "total_vps",
    "stats",
];

/// The front-end's instrument set, registered on the served cell's
/// registry so one `STATS` snapshot covers engine, store, and service.
struct ServiceMetrics {
    sessions_active: Arc<Gauge>,
    sessions_total: Arc<Counter>,
    sessions_reaped: Arc<Counter>,
    coalesce_run: Arc<Histogram>,
    queue_depth: Arc<Gauge>,
    accept_sheds: Arc<Counter>,
    /// Per-opcode server-side request latency (decode + engine work;
    /// socket I/O excluded), indexed by `opcode - 1`.
    request_us: Vec<Arc<Histogram>>,
}

impl ServiceMetrics {
    fn register(obs: &vm_obs::Registry) -> ServiceMetrics {
        ServiceMetrics {
            sessions_active: obs.gauge("vm_service_sessions_active"),
            sessions_total: obs.counter("vm_service_sessions_total"),
            sessions_reaped: obs.counter("vm_service_sessions_reaped_total"),
            coalesce_run: obs.histogram("vm_service_coalesce_run_frames"),
            queue_depth: obs.gauge("vm_service_accept_queue_depth"),
            accept_sheds: obs.counter("vm_service_accept_sheds_total"),
            request_us: OPCODE_LABELS
                .iter()
                .map(|op| obs.histogram_with("vm_service_request_us", &[("op", op)]))
                .collect(),
        }
    }

    fn request_hist(&self, opcode: u8) -> Option<&Arc<Histogram>> {
        self.request_us.get((opcode as usize).checked_sub(1)?)
    }
}

struct Shared {
    server: Arc<ViewMapServer>,
    metrics: ServiceMetrics,
    cfg: ServiceConfig,
    /// Replication role gate; `None` (a standalone cell) serves
    /// everything. Shared with the failover machinery so a promotion
    /// flips live sessions' behavior without a listener restart.
    role: Option<Arc<RoleCell>>,
    shutdown: AtomicBool,
    /// Accepted, not-yet-claimed connections (capped at
    /// [`ServiceConfig::max_backlog`] by the acceptor).
    queue: Mutex<VecDeque<TcpStream>>,
    queue_cv: Condvar,
    /// `(session token, socket clone)` for every live session, so
    /// shutdown can unblock reads. Slots are retired by token when
    /// their session ends.
    live: Mutex<Vec<(u64, TcpStream)>>,
    /// Fresh per-session ids for [`AnonymousSubmission`] stamping.
    next_session: AtomicU64,
}

/// The front-end itself; construct with [`VmService::spawn`].
pub struct VmService;

/// A running service: its bound address plus the shutdown control.
/// Dropping the handle shuts the service down.
pub struct ServiceHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    supervisor: Option<std::thread::JoinHandle<()>>,
}

impl VmService {
    /// Bind `addr` (use port 0 for an ephemeral port) and serve
    /// `server` until the returned handle is shut down or dropped.
    pub fn spawn(
        server: Arc<ViewMapServer>,
        addr: impl ToSocketAddrs,
        cfg: ServiceConfig,
    ) -> std::io::Result<ServiceHandle> {
        Self::spawn_with_role(server, addr, cfg, None)
    }

    /// As [`spawn`](Self::spawn), gated by a replication [`RoleCell`]:
    /// while the cell says [`Role::Follower`], every mutating opcode is
    /// rejected with [`ErrorCode::NotPrimary`] (the detail carries the
    /// node's epoch) and only reads — investigate, public-key,
    /// total-VPs — are served. Promoting the cell flips live sessions
    /// to full service without restarting the listener.
    pub fn spawn_with_role(
        server: Arc<ViewMapServer>,
        addr: impl ToSocketAddrs,
        cfg: ServiceConfig,
        role: Option<Arc<RoleCell>>,
    ) -> std::io::Result<ServiceHandle> {
        assert!(cfg.workers >= 1, "a service needs at least one worker");
        assert!(cfg.max_coalesce >= 1, "coalescing window must be nonzero");
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            metrics: ServiceMetrics::register(server.obs()),
            server,
            cfg,
            role,
            shutdown: AtomicBool::new(false),
            queue: Mutex::new(VecDeque::new()),
            queue_cv: Condvar::new(),
            live: Mutex::new(Vec::new()),
            next_session: AtomicU64::new(1),
        });
        let sup_shared = Arc::clone(&shared);
        let supervisor = std::thread::Builder::new()
            .name("vm-service".into())
            .spawn(move || {
                // Role 0 is the acceptor; roles 1..=workers serve
                // sessions. One chunk per role through the shared
                // scoped-thread fan-out (`even_cuts(n, n)` yields n
                // width-1 chunks), so the pool is bounded by
                // construction and joins when every role returns.
                let roles = sup_shared.cfg.workers + 1;
                let cuts = viewmap_core::par::even_cuts(roles, roles);
                viewmap_core::par::map_ranges(&cuts, |role, _, _| {
                    if role == 0 {
                        accept_loop(&sup_shared, &listener);
                    } else {
                        worker_loop(&sup_shared);
                    }
                });
            })?;
        Ok(ServiceHandle {
            addr,
            shared,
            supervisor: Some(supervisor),
        })
    }
}

impl ServiceHandle {
    /// The bound socket address (the port to hand to [`crate::client::VmClient`]).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop accepting, close live sessions, and join every thread.
    /// Idempotent; also runs on drop.
    pub fn shutdown(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        // Wake the acceptor: a throwaway loopback connect makes its
        // blocking `accept` return so it can observe the flag.
        let _ = TcpStream::connect(self.addr);
        // Unblock every session read mid-frame.
        for (_, conn) in self.shared.live.lock().expect("live lock").iter() {
            let _ = conn.shutdown(std::net::Shutdown::Both);
        }
        self.shared.queue_cv.notify_all();
        if let Some(h) = self.supervisor.take() {
            let _ = h.join();
        }
    }
}

impl Drop for ServiceHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(shared: &Shared, listener: &TcpListener) {
    loop {
        let conn = match listener.accept() {
            Ok((conn, _)) => conn,
            Err(_) => {
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                // Persistent accept errors (EMFILE when the process is
                // out of fds, transient ENOBUFS) would otherwise spin
                // this thread at 100% CPU; back off briefly so session
                // workers can make progress and release fds.
                std::thread::sleep(std::time::Duration::from_millis(10));
                continue;
            }
        };
        if shared.shutdown.load(Ordering::SeqCst) {
            return; // the wake-up connect, or a late client — drop it
        }
        let mut queue = shared.queue.lock().expect("queue lock");
        if queue.len() >= shared.cfg.max_backlog {
            drop(conn); // shed load: close instead of growing without bound
            shared.metrics.accept_sheds.inc();
            continue;
        }
        queue.push_back(conn);
        shared.metrics.queue_depth.set(queue.len() as i64);
        drop(queue);
        shared.queue_cv.notify_one();
    }
}

fn worker_loop(shared: &Shared) {
    loop {
        let conn = {
            let mut queue = shared.queue.lock().expect("queue lock");
            loop {
                if let Some(conn) = queue.pop_front() {
                    shared.metrics.queue_depth.set(queue.len() as i64);
                    break conn;
                }
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                queue = shared.queue_cv.wait(queue).expect("queue wait");
            }
        };
        // Register a clone so shutdown can close us mid-read; retire it
        // by token when the session ends (live stays proportional to
        // *live* sessions, not total served). A session with no
        // killable handle would hang shutdown on its blocking read, so
        // a failed clone means the connection is not served at all.
        let token = shared.next_session.fetch_add(1, Ordering::Relaxed);
        let Ok(clone) = conn.try_clone() else {
            continue;
        };
        shared.live.lock().expect("live lock").push((token, clone));
        // Registration races the shutdown sweep: if the sweep ran
        // before our push it missed us, but it also ran after the flag
        // was set — so re-checking the flag *after* registering closes
        // the window (either the sweep closes our socket, or we see the
        // flag and never block on the read).
        if shared.shutdown.load(Ordering::SeqCst) {
            let _ = conn.shutdown(std::net::Shutdown::Both);
        }
        shared.metrics.sessions_total.inc();
        shared.metrics.sessions_active.add(1);
        let _ = serve_session(shared, token, conn);
        shared.metrics.sessions_active.add(-1);
        {
            let mut live = shared.live.lock().expect("live lock");
            if let Some(i) = live.iter().position(|(t, _)| *t == token) {
                live.swap_remove(i);
            }
        }
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
    }
}

/// Serve one connection to completion. `Err` covers both transport
/// failure and protocol corruption — either way the session is over.
fn serve_session(shared: &Shared, session_id: u64, conn: TcpStream) -> std::io::Result<()> {
    conn.set_nodelay(true).ok();
    // The per-session idle deadline: a read that delivers nothing for
    // idle_timeout returns WouldBlock/TimedOut instead of blocking the
    // worker forever. Failing to arm it falls back to block-forever —
    // the pre-deadline behavior — rather than killing the session.
    conn.set_read_timeout(shared.cfg.idle_timeout).ok();
    let mut reader = BufReader::new(conn.try_clone()?);
    let mut writer = BufWriter::new(conn);
    let mut pending: Option<Frame> = None;
    loop {
        let frame = match pending.take() {
            Some(f) => f,
            None => match read_next(&mut reader, &mut writer) {
                Ok(Some(f)) => f,
                Ok(None) => {
                    writer.flush()?;
                    return Ok(()); // clean close
                }
                Err(e)
                    if matches!(
                        e.kind(),
                        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                    ) =>
                {
                    // Idle deadline expired with no new frame: reap the
                    // session. (If the deadline lands mid-frame the
                    // partial bytes are dropped with the connection —
                    // the peer sees a close, exactly like a transport
                    // failure, and no partial frame is ever dispatched.)
                    shared.metrics.sessions_reaped.inc();
                    let _ = writer.flush();
                    return Ok(());
                }
                Err(e) => return Err(e),
            },
        };
        if frame.opcode == OP_SUBMIT {
            // Coalesce the pipelined run: keep pulling frames while more
            // bytes are already buffered (never block holding unflushed
            // replies), stop at the first non-submit or the window cap.
            let mut run = vec![frame];
            while run.len() < shared.cfg.max_coalesce && !reader.buffer().is_empty() {
                match Frame::read_from(&mut reader)? {
                    Some(f) if f.opcode == OP_SUBMIT => run.push(f),
                    Some(f) => {
                        pending = Some(f);
                        break;
                    }
                    None => break,
                }
            }
            handle_submit_run(shared, session_id, &run, &mut writer)?;
        } else {
            let reply = match shared.metrics.request_hist(frame.opcode) {
                Some(h) => h.time(|| dispatch(shared, session_id, &frame)),
                None => dispatch(shared, session_id, &frame),
            };
            note_reply(shared, &reply);
            write_reply(&mut writer, frame.request_id, &reply)?;
        }
        if reader.buffer().is_empty() {
            writer.flush()?;
        }
    }
}

/// Read the next frame, flushing buffered replies first whenever the
/// read could block (nothing pipelined remains in the read buffer).
fn read_next(
    reader: &mut BufReader<TcpStream>,
    writer: &mut BufWriter<TcpStream>,
) -> std::io::Result<Option<Frame>> {
    if reader.buffer().is_empty() {
        writer.flush()?;
    }
    Frame::read_from(reader)
}

/// Commit one coalesced run of `SUBMIT` frames through
/// `submit_batch_warm` and reply to each frame in arrival order.
/// The `NotPrimary` rejection for this node, if mutations are currently
/// gated off (the role cell says follower). Checked per frame, so a
/// promotion takes effect on live sessions' next request.
fn follower_reject(shared: &Shared) -> Option<Reply> {
    match &shared.role {
        Some(cell) if cell.role() == Role::Follower => Some(Reply::Err(
            ErrorCode::NotPrimary,
            format!("follower at epoch {}", cell.epoch()),
        )),
        _ => None,
    }
}

/// Count error replies by typed code, so `STATS` exposes the error mix
/// (`vm_service_errors_total{code="..."}`). Error path only — accepted
/// requests never touch the registry lock.
fn note_reply(shared: &Shared, reply: &Reply) {
    if let Reply::Err(code, _) = reply {
        let label = code.to_string();
        shared
            .server
            .obs()
            .counter_with("vm_service_errors_total", &[("code", label.as_str())])
            .inc();
    }
}

fn handle_submit_run(
    shared: &Shared,
    session_id: u64,
    run: &[Frame],
    writer: &mut BufWriter<TcpStream>,
) -> std::io::Result<()> {
    shared.metrics.coalesce_run.record(run.len() as u64);
    // A follower never lets a submit touch the server — the replicated
    // log's head is the primary, and writes entering anywhere else
    // would fork it. Each frame still gets its own (error) reply.
    if let Some(reply) = follower_reject(shared) {
        note_reply(shared, &reply);
        for f in run {
            write_reply(writer, f.request_id, &reply)?;
        }
        return Ok(());
    }
    // Decode first: frames whose payload fails to parse get BadRequest
    // and are excluded from the batch (their slot keeps frame order).
    let mut decode_err: Vec<Option<ErrorCode>> = Vec::with_capacity(run.len());
    let mut batch: Vec<AnonymousSubmission> = Vec::with_capacity(run.len());
    for f in run {
        match Request::decode(f.opcode, &f.payload) {
            Ok(Request::Submit(vp)) => {
                decode_err.push(None);
                batch.push(AnonymousSubmission { session_id, vp });
            }
            Ok(_) => unreachable!("run holds only OP_SUBMIT frames"),
            Err(code) => decode_err.push(Some(code)),
        }
    }
    let submit_us = shared
        .metrics
        .request_hist(OP_SUBMIT)
        .expect("submit opcode is registered");
    let mut results = submit_us
        .time(|| shared.server.submit_batch_warm(batch))
        .into_iter();
    for (f, d) in run.iter().zip(&decode_err) {
        let reply = match d {
            Some(code) => Reply::Err(*code, "undecodable VP record".into()),
            None => match results.next().expect("one result per decoded frame") {
                Ok(()) => Reply::Ok,
                Err(e) => Reply::Err(e.into(), String::new()),
            },
        };
        note_reply(shared, &reply);
        write_reply(writer, f.request_id, &reply)?;
    }
    Ok(())
}

fn write_reply(
    writer: &mut BufWriter<TcpStream>,
    request_id: u32,
    reply: &Reply,
) -> std::io::Result<()> {
    Frame {
        request_id,
        opcode: reply.opcode(),
        payload: reply.encode_payload(),
    }
    .write_to(writer)
}

/// Execute one non-submit request against the shared server.
fn dispatch(shared: &Shared, session_id: u64, frame: &Frame) -> Reply {
    let req = match Request::decode(frame.opcode, &frame.payload) {
        Ok(req) => req,
        Err(code) => return Reply::Err(code, format!("opcode {:#04x}", frame.opcode)),
    };
    // Followers serve reads only; every mutating opcode bounces with
    // the node's epoch so the client can redial the primary. `STATS` is
    // deliberately in the read set: a fenced follower's telemetry is
    // exactly what an operator needs while deciding whether to promote.
    let mutating = !matches!(
        req,
        Request::Investigate { .. } | Request::PublicKey | Request::TotalVps | Request::Stats
    );
    if mutating {
        if let Some(reply) = follower_reject(shared) {
            return reply;
        }
    }
    let srv = &*shared.server;
    match req {
        // `serve_session` routes every OP_SUBMIT frame into the
        // coalesce path (`pending` only ever holds non-submit frames),
        // so a Submit can never reach this dispatcher.
        Request::Submit(_) => unreachable!("OP_SUBMIT frames take the coalesced path"),
        Request::SubmitBatch(vps) => {
            let subs: Vec<AnonymousSubmission> = vps
                .into_iter()
                .map(|vp| AnonymousSubmission { session_id, vp })
                .collect();
            Reply::BatchResults(
                srv.submit_batch_warm(subs)
                    .into_iter()
                    .map(|r| r.err().map(ErrorCode::from))
                    .collect(),
            )
        }
        Request::Investigate { minute, site } => Reply::VpIds(srv.investigate(minute, site)),
        Request::Solicit(id) => {
            srv.solicit(id);
            Reply::Ok
        }
        Request::UploadVideo(upload) => match srv.upload_video(&upload) {
            Ok(()) => Reply::Ok,
            Err(e) => Reply::Err((&e).into(), e.to_string()),
        },
        Request::ClaimReward { vp_id, secret } => match srv.claim_reward(vp_id, &secret) {
            Ok(units) => Reply::Units(units as u64),
            Err(e) => Reply::Err(reward_code(e), String::new()),
        },
        Request::BlindSign {
            vp_id,
            secret,
            blinded,
        } => match srv.issue_blind_signatures(vp_id, &secret, &blinded) {
            Ok(sigs) => Reply::Signatures(sigs),
            Err(e) => Reply::Err(reward_code(e), String::new()),
        },
        Request::Redeem(cash) => match srv.redeem(&cash) {
            Ok(()) => Reply::Ok,
            Err(viewmap_core::server::RedeemError::BadSignature) => {
                Reply::Err(ErrorCode::BadSignature, String::new())
            }
            Err(viewmap_core::server::RedeemError::DoubleSpend) => {
                Reply::Err(ErrorCode::DoubleSpend, String::new())
            }
        },
        Request::PublicKey => {
            let pk = srv.public_key();
            Reply::PublicKey {
                n: pk.modulus().to_bytes_be(),
                e: pk.exponent().to_bytes_be(),
            }
        }
        Request::TotalVps => Reply::Count(srv.total_vps() as u64),
        Request::Stats => Reply::Stats(srv.obs().snapshot().render_text()),
    }
}

fn reward_code(e: viewmap_core::server::RewardError) -> ErrorCode {
    match e {
        viewmap_core::server::RewardError::NotOnBoard => ErrorCode::NotOnBoard,
        viewmap_core::server::RewardError::BadOwnershipProof => ErrorCode::BadOwnershipProof,
    }
}
