//! The vm-service wire format: length-framed, checksummed binary frames
//! carrying typed requests and replies.
//!
//! # Frame layout
//!
//! Every message — request or reply, either direction — travels in one
//! frame:
//!
//! ```text
//! frame (16 B header + body) :=
//!   ┌──────────────┬──────────────┬───────────────────┬────────────┐
//!   │ magic "VMS1" │ body_len u32 │ checksum64 u64 LE │ body bytes │
//!   │ (4 B)        │ LE (4 B)     │ of body           │ (body_len) │
//!   └──────────────┴──────────────┴───────────────────┴────────────┘
//! body := request_id u32 LE | opcode u8 | payload
//! ```
//!
//! The checksum is [`vm_crypto::checksum64`] — the same 64-bit SHA-256
//! prefix the storage layer stamps on append-log records — so a torn or
//! corrupted frame is indistinguishable from "no frame here" and the
//! connection fails loudly instead of dispatching garbage. `request_id`
//! is chosen by the client and echoed verbatim in the reply; replies on
//! one connection arrive in request order (the server is serial per
//! session), so the id is a cross-check, not a reordering mechanism.
//!
//! # Opcodes
//!
//! | op | request | payload |
//! |---|---|---|
//! | `0x01` | `SUBMIT` | one VP record ([`vm_store::codec`] bytes) |
//! | `0x02` | `SUBMIT_BATCH` | `u32 n`, then n × (`u32 len`, record) |
//! | `0x03` | `INVESTIGATE` | `u64 minute`, `f64 x`, `f64 y`, `f64 radius_m` |
//! | `0x04` | `SOLICIT` | 16 B VP id |
//! | `0x05` | `UPLOAD_VIDEO` | 16 B VP id, `u32 n`, n × (`u32 len`, chunk) |
//! | `0x06` | `CLAIM_REWARD` | 16 B VP id, 8 B secret `Q_u` |
//! | `0x07` | `BLIND_SIGN` | 16 B VP id, 8 B secret, `u32 n`, n × (`u32 len`, big-endian value) |
//! | `0x08` | `REDEEM` | 32 B cash message, `u32 len`, big-endian signature |
//! | `0x09` | `PUBLIC_KEY` | empty |
//! | `0x0A` | `TOTAL_VPS` | empty |
//! | `0x0B` | `STATS` | empty |
//!
//! | op | reply | payload |
//! |---|---|---|
//! | `0x80` | `OK` | request-specific (see [`Reply`]) |
//! | `0x81` | `ERR` | `u16` [`ErrorCode`], `u32 len`, UTF-8 detail |
//!
//! VP records on the wire reuse the storage codec
//! ([`vm_store::codec::encode_record`] /
//! [`vm_store::codec::decode_record`]), which itself rides
//! [`viewmap_core::vd::ViewDigest::encode_store`]: the same bit-exact,
//! delta-compressed bytes the append log persists are what uploader
//! sessions send, so a VP costs ~1.5 KB on the wire instead of 5.3 KB
//! flat and the server has exactly one canonical VP codec to harden.
//!
//! There is deliberately **no** wire operation for trusted (authority)
//! VPs: those enter through the in-process authority channel
//! ([`viewmap_core::server::ViewMapServer::submit_trusted_batch`]), not
//! the anonymous public front-end — a network peer must never be able
//! to mint trust anchors.

use std::io::{BufRead, Write};
use viewmap_core::reward::Cash;
use viewmap_core::server::SubmitError;
use viewmap_core::solicit::{UploadError, VideoUpload};
use viewmap_core::types::{GeoPos, MinuteId, VpId};
use viewmap_core::viewmap::Site;
use viewmap_core::vp::StoredVp;
use vm_crypto::{BigUint, BlindedMessage, Digest16, Signature};

/// Frame magic: "VMS1".
pub const FRAME_MAGIC: [u8; 4] = *b"VMS1";

/// Bytes before the body: magic, body length, checksum.
pub const FRAME_HEADER_BYTES: usize = 16;

/// Body bytes before the payload: request id + opcode.
pub const BODY_PREFIX_BYTES: usize = 5;

/// Hard cap on one frame's body. Large enough for a several-thousand-VP
/// explicit batch (~1.5 KB per record), small enough that a corrupted
/// or hostile length field cannot make the peer allocate gigabytes.
/// Clients moving more than this pipeline multiple frames instead
/// ([`crate::client::VmClient::submit_pipelined`] windows internally).
pub const MAX_BODY_BYTES: usize = 64 << 20;

// ── request opcodes ────────────────────────────────────────────────────

/// Submit one anonymized VP.
pub const OP_SUBMIT: u8 = 0x01;
/// Submit a batch of anonymized VPs in one frame.
pub const OP_SUBMIT_BATCH: u8 = 0x02;
/// Build + verify the viewmap for a minute around a site.
pub const OP_INVESTIGATE: u8 = 0x03;
/// Post a solicitation for a VP id.
pub const OP_SOLICIT: u8 = 0x04;
/// Upload a solicited video.
pub const OP_UPLOAD_VIDEO: u8 = 0x05;
/// Prove ownership of a rewarded VP, learn the award amount.
pub const OP_CLAIM_REWARD: u8 = 0x06;
/// Have the server blind-sign cash messages for a rewarded VP.
pub const OP_BLIND_SIGN: u8 = 0x07;
/// Redeem one unit of cash.
pub const OP_REDEEM: u8 = 0x08;
/// Fetch the system public key (modulus + exponent).
pub const OP_PUBLIC_KEY: u8 = 0x09;
/// Total VPs stored (liveness / smoke probe).
pub const OP_TOTAL_VPS: u8 = 0x0A;
/// Fetch the node's telemetry snapshot as versioned text exposition
/// (`vm_obs` format: `name{label="v"} value` lines). Read-only — served
/// by followers too, so an operator can scrape a fenced node.
pub const OP_STATS: u8 = 0x0B;

// ── reply opcodes ──────────────────────────────────────────────────────

/// Success reply; payload depends on the request opcode.
pub const OP_OK: u8 = 0x80;
/// Typed error reply: `u16` code + UTF-8 detail.
pub const OP_ERR: u8 = 0x81;

/// Why a frame failed to parse. Any of these on a live connection means
/// the byte stream is corrupt or foreign; the peer closes it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FrameError {
    /// The first four bytes are not [`FRAME_MAGIC`].
    BadMagic,
    /// The declared body length exceeds [`MAX_BODY_BYTES`].
    TooLarge,
    /// The body checksum does not match — torn or corrupted frame.
    BadChecksum,
    /// The body is shorter than the request-id + opcode prefix.
    BadBody,
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::BadMagic => write!(f, "bad frame magic"),
            FrameError::TooLarge => write!(f, "frame body exceeds {MAX_BODY_BYTES} bytes"),
            FrameError::BadChecksum => write!(f, "frame checksum mismatch"),
            FrameError::BadBody => write!(f, "frame body shorter than its fixed prefix"),
        }
    }
}

impl std::error::Error for FrameError {}

/// One wire frame: an opcode-tagged payload stamped with the client's
/// request id.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Frame {
    /// Client-chosen id, echoed in the reply.
    pub request_id: u32,
    /// One of the `OP_*` constants.
    pub opcode: u8,
    /// Opcode-specific payload bytes.
    pub payload: Vec<u8>,
}

impl Frame {
    /// Append the encoded frame to `out`.
    pub fn encode(&self, out: &mut Vec<u8>) {
        let body_len = BODY_PREFIX_BYTES + self.payload.len();
        assert!(body_len <= MAX_BODY_BYTES, "frame body exceeds the cap");
        out.reserve(FRAME_HEADER_BYTES + body_len);
        out.extend_from_slice(&FRAME_MAGIC);
        out.extend_from_slice(&(body_len as u32).to_le_bytes());
        let sum_at = out.len();
        out.extend_from_slice(&[0u8; 8]);
        let body_at = out.len();
        out.extend_from_slice(&self.request_id.to_le_bytes());
        out.push(self.opcode);
        out.extend_from_slice(&self.payload);
        let sum = vm_crypto::checksum64(&out[body_at..]);
        out[sum_at..sum_at + 8].copy_from_slice(&sum.to_le_bytes());
    }

    /// Try to decode one frame from the front of `buf`.
    ///
    /// Returns `Ok(None)` when `buf` holds only a strict prefix of a
    /// frame (more bytes needed), `Ok(Some((frame, consumed)))` on
    /// success, and `Err` when the bytes can never become a valid frame
    /// (bad magic, oversized length, checksum mismatch).
    pub fn decode(buf: &[u8]) -> Result<Option<(Frame, usize)>, FrameError> {
        if buf.len() >= 4 && buf[..4] != FRAME_MAGIC {
            return Err(FrameError::BadMagic);
        }
        if buf.len() < FRAME_HEADER_BYTES {
            return Ok(None);
        }
        let body_len = u32::from_le_bytes(buf[4..8].try_into().expect("4 bytes")) as usize;
        if body_len > MAX_BODY_BYTES {
            return Err(FrameError::TooLarge);
        }
        if body_len < BODY_PREFIX_BYTES {
            return Err(FrameError::BadBody);
        }
        let total = FRAME_HEADER_BYTES + body_len;
        if buf.len() < total {
            return Ok(None);
        }
        let declared = u64::from_le_bytes(buf[8..16].try_into().expect("8 bytes"));
        let body = &buf[FRAME_HEADER_BYTES..total];
        if vm_crypto::checksum64(body) != declared {
            return Err(FrameError::BadChecksum);
        }
        let request_id = u32::from_le_bytes(body[..4].try_into().expect("4 bytes"));
        Ok(Some((
            Frame {
                request_id,
                opcode: body[4],
                payload: body[BODY_PREFIX_BYTES..].to_vec(),
            },
            total,
        )))
    }

    /// Write the frame to `w` (buffered by the caller; not flushed).
    pub fn write_to(&self, w: &mut impl Write) -> std::io::Result<()> {
        let mut buf =
            Vec::with_capacity(FRAME_HEADER_BYTES + BODY_PREFIX_BYTES + self.payload.len());
        self.encode(&mut buf);
        w.write_all(&buf)
    }

    /// Read one frame from `r`. Returns `Ok(None)` on a clean EOF at a
    /// frame boundary; EOF mid-frame or an invalid frame is an
    /// `InvalidData` error (the connection is not recoverable).
    pub fn read_from(r: &mut impl BufRead) -> std::io::Result<Option<Frame>> {
        let mut header = [0u8; FRAME_HEADER_BYTES];
        let mut filled = 0usize;
        while filled < header.len() {
            let n = r.read(&mut header[filled..])?;
            if n == 0 {
                if filled == 0 {
                    return Ok(None);
                }
                return Err(invalid_data("connection closed mid-frame"));
            }
            filled += n;
        }
        if header[..4] != FRAME_MAGIC {
            return Err(invalid_data(FrameError::BadMagic));
        }
        let body_len = u32::from_le_bytes(header[4..8].try_into().expect("4 bytes")) as usize;
        if body_len > MAX_BODY_BYTES {
            return Err(invalid_data(FrameError::TooLarge));
        }
        if body_len < BODY_PREFIX_BYTES {
            return Err(invalid_data(FrameError::BadBody));
        }
        let declared = u64::from_le_bytes(header[8..16].try_into().expect("8 bytes"));
        let mut body = vec![0u8; body_len];
        r.read_exact(&mut body)?;
        if vm_crypto::checksum64(&body) != declared {
            return Err(invalid_data(FrameError::BadChecksum));
        }
        let request_id = u32::from_le_bytes(body[..4].try_into().expect("4 bytes"));
        let opcode = body[4];
        body.drain(..BODY_PREFIX_BYTES);
        Ok(Some(Frame {
            request_id,
            opcode,
            payload: body,
        }))
    }
}

fn invalid_data(e: impl std::fmt::Display) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string())
}

// ── typed error codes ──────────────────────────────────────────────────

/// Every error the service can return, as a stable wire code.
///
/// Codes are grouped by the server-side error they surface; the gaps
/// between groups leave room for new variants without renumbering.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u16)]
pub enum ErrorCode {
    /// [`SubmitError::Duplicate`].
    Duplicate = 1,
    /// [`SubmitError::MalformedVds`].
    MalformedVds = 2,
    /// [`SubmitError::SuspiciousBloom`].
    SuspiciousBloom = 3,
    /// [`UploadError::NotSolicited`].
    NotSolicited = 10,
    /// [`UploadError::UnknownVp`].
    UnknownVp = 11,
    /// [`UploadError::Chain`] — cascaded-hash validation failed.
    ChainInvalid = 12,
    /// [`viewmap_core::server::RewardError::NotOnBoard`].
    NotOnBoard = 20,
    /// [`viewmap_core::server::RewardError::BadOwnershipProof`].
    BadOwnershipProof = 21,
    /// [`viewmap_core::server::RedeemError::BadSignature`].
    BadSignature = 30,
    /// [`viewmap_core::server::RedeemError::DoubleSpend`].
    DoubleSpend = 31,
    /// The frame was valid but its payload did not parse for its opcode.
    BadRequest = 40,
    /// The opcode is not one this server understands.
    UnknownOpcode = 41,
    /// This node is a replication follower: it serves reads but rejects
    /// every mutating opcode. The detail string carries the node's
    /// current epoch; clients should redial the primary (or wait for
    /// this node's promotion).
    NotPrimary = 50,
}

impl ErrorCode {
    /// Decode a wire code.
    pub fn from_u16(v: u16) -> Option<ErrorCode> {
        use ErrorCode::*;
        Some(match v {
            1 => Duplicate,
            2 => MalformedVds,
            3 => SuspiciousBloom,
            10 => NotSolicited,
            11 => UnknownVp,
            12 => ChainInvalid,
            20 => NotOnBoard,
            21 => BadOwnershipProof,
            30 => BadSignature,
            31 => DoubleSpend,
            40 => BadRequest,
            41 => UnknownOpcode,
            50 => NotPrimary,
            _ => return None,
        })
    }
}

impl std::fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{self:?}")
    }
}

impl From<SubmitError> for ErrorCode {
    fn from(e: SubmitError) -> Self {
        match e {
            SubmitError::Duplicate => ErrorCode::Duplicate,
            SubmitError::MalformedVds => ErrorCode::MalformedVds,
            SubmitError::SuspiciousBloom => ErrorCode::SuspiciousBloom,
        }
    }
}

impl From<&UploadError> for ErrorCode {
    fn from(e: &UploadError) -> Self {
        match e {
            UploadError::NotSolicited => ErrorCode::NotSolicited,
            UploadError::UnknownVp => ErrorCode::UnknownVp,
            UploadError::Chain(_) => ErrorCode::ChainInvalid,
        }
    }
}

// ── requests ───────────────────────────────────────────────────────────

/// A decoded request.
#[derive(Clone, Debug)]
pub enum Request {
    /// Submit one anonymized VP.
    Submit(StoredVp),
    /// Submit many anonymized VPs in one frame.
    SubmitBatch(Vec<StoredVp>),
    /// Investigate a minute around a site.
    Investigate {
        /// The minute under investigation.
        minute: MinuteId,
        /// The incident site.
        site: Site,
    },
    /// Post a solicitation.
    Solicit(VpId),
    /// Upload a solicited video.
    UploadVideo(VideoUpload),
    /// Prove ownership of a rewarded VP.
    ClaimReward {
        /// The rewarded VP.
        vp_id: VpId,
        /// The owner secret `Q_u`.
        secret: [u8; 8],
    },
    /// Blind-sign cash messages for a rewarded VP (consumes the board
    /// entry).
    BlindSign {
        /// The rewarded VP.
        vp_id: VpId,
        /// The owner secret `Q_u`.
        secret: [u8; 8],
        /// The blinded cash messages.
        blinded: Vec<BlindedMessage>,
    },
    /// Redeem one unit of cash.
    Redeem(Cash),
    /// Fetch the system public key.
    PublicKey,
    /// Total stored VPs.
    TotalVps,
    /// Fetch the telemetry snapshot (text exposition).
    Stats,
}

impl Request {
    /// The wire opcode for this request.
    pub fn opcode(&self) -> u8 {
        match self {
            Request::Submit(_) => OP_SUBMIT,
            Request::SubmitBatch(_) => OP_SUBMIT_BATCH,
            Request::Investigate { .. } => OP_INVESTIGATE,
            Request::Solicit(_) => OP_SOLICIT,
            Request::UploadVideo(_) => OP_UPLOAD_VIDEO,
            Request::ClaimReward { .. } => OP_CLAIM_REWARD,
            Request::BlindSign { .. } => OP_BLIND_SIGN,
            Request::Redeem(_) => OP_REDEEM,
            Request::PublicKey => OP_PUBLIC_KEY,
            Request::TotalVps => OP_TOTAL_VPS,
            Request::Stats => OP_STATS,
        }
    }

    /// Encode the payload for this request.
    pub fn encode_payload(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            Request::Submit(vp) => vm_store::codec::encode_record(vp, &mut out),
            Request::SubmitBatch(vps) => {
                put_u32(&mut out, vps.len() as u32);
                let mut record = Vec::new();
                for vp in vps {
                    record.clear();
                    vm_store::codec::encode_record(vp, &mut record);
                    put_u32(&mut out, record.len() as u32);
                    out.extend_from_slice(&record);
                }
            }
            Request::Investigate { minute, site } => {
                out.extend_from_slice(&minute.0.to_le_bytes());
                out.extend_from_slice(&site.center.x.to_le_bytes());
                out.extend_from_slice(&site.center.y.to_le_bytes());
                out.extend_from_slice(&site.radius_m.to_le_bytes());
            }
            Request::Solicit(id) => out.extend_from_slice(id.0.as_bytes()),
            Request::UploadVideo(u) => {
                out.extend_from_slice(u.vp_id.0.as_bytes());
                put_u32(&mut out, u.chunks.len() as u32);
                for c in &u.chunks {
                    put_u32(&mut out, c.len() as u32);
                    out.extend_from_slice(c);
                }
            }
            Request::ClaimReward { vp_id, secret } => {
                out.extend_from_slice(vp_id.0.as_bytes());
                out.extend_from_slice(secret);
            }
            Request::BlindSign {
                vp_id,
                secret,
                blinded,
            } => {
                out.extend_from_slice(vp_id.0.as_bytes());
                out.extend_from_slice(secret);
                put_u32(&mut out, blinded.len() as u32);
                for b in blinded {
                    put_bytes(&mut out, &b.0.to_bytes_be());
                }
            }
            Request::Redeem(cash) => {
                out.extend_from_slice(&cash.message);
                put_bytes(&mut out, &cash.signature.0.to_bytes_be());
            }
            Request::PublicKey | Request::TotalVps | Request::Stats => {}
        }
        out
    }

    /// Decode a request payload for `opcode`. `Err` carries the typed
    /// code the server replies with ([`ErrorCode::BadRequest`] /
    /// [`ErrorCode::UnknownOpcode`]).
    pub fn decode(opcode: u8, payload: &[u8]) -> Result<Request, ErrorCode> {
        let mut buf = payload;
        let req = match opcode {
            OP_SUBMIT => Request::Submit(decode_vp(payload)?),
            OP_SUBMIT_BATCH => {
                let n = get_u32(&mut buf)? as usize;
                let mut vps = Vec::with_capacity(n.min(4096));
                for _ in 0..n {
                    let len = get_u32(&mut buf)? as usize;
                    vps.push(decode_vp(take(&mut buf, len)?)?);
                }
                expect_empty(buf)?;
                Request::SubmitBatch(vps)
            }
            OP_INVESTIGATE => {
                let minute = MinuteId(get_u64(&mut buf)?);
                let x = get_f64(&mut buf)?;
                let y = get_f64(&mut buf)?;
                let radius_m = get_f64(&mut buf)?;
                expect_empty(buf)?;
                Request::Investigate {
                    minute,
                    site: Site {
                        center: GeoPos::new(x, y),
                        radius_m,
                    },
                }
            }
            OP_SOLICIT => {
                let id = get_vp_id(&mut buf)?;
                expect_empty(buf)?;
                Request::Solicit(id)
            }
            OP_UPLOAD_VIDEO => {
                let vp_id = get_vp_id(&mut buf)?;
                let n = get_u32(&mut buf)? as usize;
                let mut chunks = Vec::with_capacity(n.min(4096));
                for _ in 0..n {
                    let len = get_u32(&mut buf)? as usize;
                    chunks.push(take(&mut buf, len)?.to_vec());
                }
                expect_empty(buf)?;
                Request::UploadVideo(VideoUpload { vp_id, chunks })
            }
            OP_CLAIM_REWARD => {
                let vp_id = get_vp_id(&mut buf)?;
                let secret = get_secret(&mut buf)?;
                expect_empty(buf)?;
                Request::ClaimReward { vp_id, secret }
            }
            OP_BLIND_SIGN => {
                let vp_id = get_vp_id(&mut buf)?;
                let secret = get_secret(&mut buf)?;
                let n = get_u32(&mut buf)? as usize;
                let mut blinded = Vec::with_capacity(n.min(4096));
                for _ in 0..n {
                    blinded.push(BlindedMessage(get_biguint(&mut buf)?));
                }
                expect_empty(buf)?;
                Request::BlindSign {
                    vp_id,
                    secret,
                    blinded,
                }
            }
            OP_REDEEM => {
                let mut message = [0u8; 32];
                message.copy_from_slice(take(&mut buf, 32)?);
                let signature = Signature(get_biguint(&mut buf)?);
                expect_empty(buf)?;
                Request::Redeem(Cash { message, signature })
            }
            OP_PUBLIC_KEY => {
                expect_empty(buf)?;
                Request::PublicKey
            }
            OP_TOTAL_VPS => {
                expect_empty(buf)?;
                Request::TotalVps
            }
            OP_STATS => {
                expect_empty(buf)?;
                Request::Stats
            }
            _ => return Err(ErrorCode::UnknownOpcode),
        };
        Ok(req)
    }
}

// ── replies ────────────────────────────────────────────────────────────

/// A decoded reply. `OK` payloads are request-specific; the client
/// decodes against the opcode it sent.
#[derive(Clone, Debug, PartialEq)]
pub enum Reply {
    /// Success with no payload (submit / solicit / upload / redeem).
    Ok,
    /// Per-item outcome of a `SUBMIT_BATCH` (`None` = accepted).
    BatchResults(Vec<Option<ErrorCode>>),
    /// Verified VP ids from an investigation.
    VpIds(Vec<VpId>),
    /// Award amount from a reward claim.
    Units(u64),
    /// Blind signatures.
    Signatures(Vec<Signature>),
    /// System public key as big-endian modulus + exponent bytes.
    PublicKey {
        /// RSA modulus `n`, big-endian.
        n: Vec<u8>,
        /// Public exponent `e`, big-endian.
        e: Vec<u8>,
    },
    /// A counter (total VPs).
    Count(u64),
    /// The telemetry snapshot's text exposition.
    Stats(String),
    /// Typed failure.
    Err(ErrorCode, String),
}

impl Reply {
    /// The wire opcode for this reply.
    pub fn opcode(&self) -> u8 {
        match self {
            Reply::Err(..) => OP_ERR,
            _ => OP_OK,
        }
    }

    /// Encode the payload for this reply.
    pub fn encode_payload(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            Reply::Ok => {}
            Reply::BatchResults(rs) => {
                put_u32(&mut out, rs.len() as u32);
                for r in rs {
                    let code = r.map_or(0u16, |c| c as u16);
                    out.extend_from_slice(&code.to_le_bytes());
                }
            }
            Reply::VpIds(ids) => {
                put_u32(&mut out, ids.len() as u32);
                for id in ids {
                    out.extend_from_slice(id.0.as_bytes());
                }
            }
            Reply::Units(u) => out.extend_from_slice(&u.to_le_bytes()),
            Reply::Signatures(sigs) => {
                put_u32(&mut out, sigs.len() as u32);
                for s in sigs {
                    put_bytes(&mut out, &s.0.to_bytes_be());
                }
            }
            Reply::PublicKey { n, e } => {
                put_bytes(&mut out, n);
                put_bytes(&mut out, e);
            }
            Reply::Count(c) => out.extend_from_slice(&c.to_le_bytes()),
            Reply::Stats(text) => put_bytes(&mut out, text.as_bytes()),
            Reply::Err(code, detail) => {
                out.extend_from_slice(&(*code as u16).to_le_bytes());
                put_bytes(&mut out, detail.as_bytes());
            }
        }
        out
    }

    /// Decode a reply to a request that was sent with `request_opcode`.
    pub fn decode(request_opcode: u8, reply_opcode: u8, payload: &[u8]) -> Option<Reply> {
        let mut buf = payload;
        if reply_opcode == OP_ERR {
            let code = ErrorCode::from_u16(u16::from_le_bytes(
                take(&mut buf, 2).ok()?.try_into().expect("2 bytes"),
            ))?;
            let detail = String::from_utf8(get_bytes(&mut buf).ok()?).ok()?;
            expect_empty(buf).ok()?;
            return Some(Reply::Err(code, detail));
        }
        if reply_opcode != OP_OK {
            return None;
        }
        let reply = match request_opcode {
            OP_SUBMIT | OP_SOLICIT | OP_UPLOAD_VIDEO | OP_REDEEM => Reply::Ok,
            OP_SUBMIT_BATCH => {
                let n = get_u32(&mut buf).ok()? as usize;
                let mut rs = Vec::with_capacity(n.min(4096));
                for _ in 0..n {
                    let code =
                        u16::from_le_bytes(take(&mut buf, 2).ok()?.try_into().expect("2 bytes"));
                    rs.push(if code == 0 {
                        None
                    } else {
                        Some(ErrorCode::from_u16(code)?)
                    });
                }
                Reply::BatchResults(rs)
            }
            OP_INVESTIGATE => {
                let n = get_u32(&mut buf).ok()? as usize;
                let mut ids = Vec::with_capacity(n.min(65536));
                for _ in 0..n {
                    ids.push(get_vp_id(&mut buf).ok()?);
                }
                Reply::VpIds(ids)
            }
            OP_CLAIM_REWARD => Reply::Units(get_u64(&mut buf).ok()?),
            OP_BLIND_SIGN => {
                let n = get_u32(&mut buf).ok()? as usize;
                let mut sigs = Vec::with_capacity(n.min(4096));
                for _ in 0..n {
                    sigs.push(Signature(get_biguint(&mut buf).ok()?));
                }
                Reply::Signatures(sigs)
            }
            OP_PUBLIC_KEY => {
                let n = get_bytes(&mut buf).ok()?;
                let e = get_bytes(&mut buf).ok()?;
                Reply::PublicKey { n, e }
            }
            OP_TOTAL_VPS => Reply::Count(get_u64(&mut buf).ok()?),
            OP_STATS => Reply::Stats(String::from_utf8(get_bytes(&mut buf).ok()?).ok()?),
            _ => return None,
        };
        expect_empty(buf).ok()?;
        Some(reply)
    }
}

// ── payload primitives ─────────────────────────────────────────────────

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Length-prefixed byte string.
fn put_bytes(out: &mut Vec<u8>, bytes: &[u8]) {
    put_u32(out, bytes.len() as u32);
    out.extend_from_slice(bytes);
}

fn take<'a>(buf: &mut &'a [u8], n: usize) -> Result<&'a [u8], ErrorCode> {
    if buf.len() < n {
        return Err(ErrorCode::BadRequest);
    }
    let (head, rest) = buf.split_at(n);
    *buf = rest;
    Ok(head)
}

fn get_u32(buf: &mut &[u8]) -> Result<u32, ErrorCode> {
    Ok(u32::from_le_bytes(take(buf, 4)?.try_into().expect("4")))
}

fn get_u64(buf: &mut &[u8]) -> Result<u64, ErrorCode> {
    Ok(u64::from_le_bytes(take(buf, 8)?.try_into().expect("8")))
}

fn get_f64(buf: &mut &[u8]) -> Result<f64, ErrorCode> {
    Ok(f64::from_le_bytes(take(buf, 8)?.try_into().expect("8")))
}

fn get_bytes(buf: &mut &[u8]) -> Result<Vec<u8>, ErrorCode> {
    let len = get_u32(buf)? as usize;
    Ok(take(buf, len)?.to_vec())
}

fn get_vp_id(buf: &mut &[u8]) -> Result<VpId, ErrorCode> {
    let mut b = [0u8; 16];
    b.copy_from_slice(take(buf, 16)?);
    Ok(VpId(Digest16(b)))
}

fn get_secret(buf: &mut &[u8]) -> Result<[u8; 8], ErrorCode> {
    let mut s = [0u8; 8];
    s.copy_from_slice(take(buf, 8)?);
    Ok(s)
}

fn get_biguint(buf: &mut &[u8]) -> Result<BigUint, ErrorCode> {
    Ok(BigUint::from_bytes_be(&get_bytes(buf)?))
}

fn decode_vp(bytes: &[u8]) -> Result<StoredVp, ErrorCode> {
    vm_store::codec::decode_record(bytes).map_err(|_| ErrorCode::BadRequest)
}

fn expect_empty(buf: &[u8]) -> Result<(), ErrorCode> {
    if buf.is_empty() {
        Ok(())
    } else {
        Err(ErrorCode::BadRequest)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame(request_id: u32, opcode: u8, payload: &[u8]) -> Vec<u8> {
        let mut out = Vec::new();
        Frame {
            request_id,
            opcode,
            payload: payload.to_vec(),
        }
        .encode(&mut out);
        out
    }

    #[test]
    fn frame_roundtrips_through_slice_and_reader() {
        let bytes = frame(7, OP_INVESTIGATE, b"payload bytes");
        let (f, consumed) = Frame::decode(&bytes).unwrap().unwrap();
        assert_eq!(consumed, bytes.len());
        assert_eq!((f.request_id, f.opcode), (7, OP_INVESTIGATE));
        assert_eq!(f.payload, b"payload bytes");

        let mut reader = std::io::BufReader::new(&bytes[..]);
        let g = Frame::read_from(&mut reader).unwrap().unwrap();
        assert_eq!(f, g);
        assert!(
            Frame::read_from(&mut reader).unwrap().is_none(),
            "clean EOF"
        );
    }

    #[test]
    fn bad_magic_and_oversize_and_short_body_rejected() {
        let mut bytes = frame(1, OP_SUBMIT, b"x");
        bytes[0] ^= 0xff;
        assert_eq!(Frame::decode(&bytes), Err(FrameError::BadMagic));

        let mut oversize = frame(1, OP_SUBMIT, b"x");
        oversize[4..8].copy_from_slice(&(MAX_BODY_BYTES as u32 + 1).to_le_bytes());
        assert_eq!(Frame::decode(&oversize), Err(FrameError::TooLarge));

        let mut short = frame(1, OP_SUBMIT, b"");
        short[4..8].copy_from_slice(&2u32.to_le_bytes());
        assert_eq!(Frame::decode(&short), Err(FrameError::BadBody));
    }

    #[test]
    fn error_codes_roundtrip() {
        for code in [
            ErrorCode::Duplicate,
            ErrorCode::MalformedVds,
            ErrorCode::SuspiciousBloom,
            ErrorCode::NotSolicited,
            ErrorCode::UnknownVp,
            ErrorCode::ChainInvalid,
            ErrorCode::NotOnBoard,
            ErrorCode::BadOwnershipProof,
            ErrorCode::BadSignature,
            ErrorCode::DoubleSpend,
            ErrorCode::BadRequest,
            ErrorCode::UnknownOpcode,
            ErrorCode::NotPrimary,
        ] {
            assert_eq!(ErrorCode::from_u16(code as u16), Some(code));
        }
        assert_eq!(ErrorCode::from_u16(999), None);
    }

    #[test]
    fn err_reply_roundtrips() {
        let r = Reply::Err(ErrorCode::Duplicate, "already stored".into());
        let back = Reply::decode(OP_SUBMIT, r.opcode(), &r.encode_payload()).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn unknown_opcode_is_typed() {
        assert!(matches!(
            Request::decode(0x7f, &[]),
            Err(ErrorCode::UnknownOpcode)
        ));
    }
}
