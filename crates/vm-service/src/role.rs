//! Replication role/epoch state for a serving node.
//!
//! A ViewMap cell is either the **primary** of its replication group —
//! it accepts mutations, logs them, ships the log — or a **follower**
//! applying its primary's shipped frames. A follower still *serves*:
//! investigations, public-key fetches, and counters are answered from
//! its replica state (which trails the primary only by the shipping
//! latency), but every mutating opcode is rejected with
//! [`crate::proto::ErrorCode::NotPrimary`] so no write can enter the
//! group anywhere but the head of the log.
//!
//! The **epoch** is a monotonically increasing configuration number: it
//! starts at the operator-assigned value and bumps on every
//! [`RoleCell::promote`]. The replication layer (`vm-repl`) uses it to
//! fence stale peers — a node never accepts a replication stream from a
//! lower epoch than its own.
//!
//! The cell is shared (`Arc`) between the front-end
//! ([`crate::server::VmService::spawn_with_role`]) and whatever failover
//! machinery decides to promote, so a promotion flips the serving
//! behavior of live sessions without restarting the listener: the next
//! dispatched frame observes the new role.

use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};

/// What a node currently is within its replication group.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Role {
    /// Accepts mutations; the head of the replicated log.
    Primary,
    /// Applies shipped frames; serves reads, rejects mutations.
    Follower,
}

/// Shared, lock-free role + epoch state.
#[derive(Debug)]
pub struct RoleCell {
    /// 0 = primary, 1 = follower.
    role: AtomicU8,
    epoch: AtomicU64,
}

impl RoleCell {
    /// A cell starting as `role` in `epoch`.
    pub fn new(role: Role, epoch: u64) -> Self {
        RoleCell {
            role: AtomicU8::new(match role {
                Role::Primary => 0,
                Role::Follower => 1,
            }),
            epoch: AtomicU64::new(epoch),
        }
    }

    /// The current role.
    pub fn role(&self) -> Role {
        match self.role.load(Ordering::Acquire) {
            0 => Role::Primary,
            _ => Role::Follower,
        }
    }

    /// The current epoch.
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// Become primary in a new epoch: bumps the epoch *then* flips the
    /// role, returning the new epoch. Idempotent in effect (promoting a
    /// primary just advances its epoch), but meant to be called once,
    /// by the failover decision-maker, after the follower's replica
    /// state is caught up.
    pub fn promote(&self) -> u64 {
        let epoch = self.epoch.fetch_add(1, Ordering::AcqRel) + 1;
        self.role.store(0, Ordering::Release);
        epoch
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn promote_flips_role_and_bumps_epoch() {
        let cell = RoleCell::new(Role::Follower, 3);
        assert_eq!(cell.role(), Role::Follower);
        assert_eq!(cell.epoch(), 3);
        assert_eq!(cell.promote(), 4);
        assert_eq!(cell.role(), Role::Primary);
        assert_eq!(cell.epoch(), 4);
    }
}
