//! [`VmClient`] — a blocking, pipelining client for the vm-service wire
//! protocol.
//!
//! One client owns one TCP session. Calls are synchronous
//! request/reply; [`VmClient::submit_pipelined`] additionally drives
//! the uploader fast path: it writes a window of `SUBMIT` frames before
//! reading any reply, which is exactly the shape the server coalesces
//! into warm batch ingest. Windowing (default
//! [`PIPELINE_WINDOW`] frames in flight) bounds the unread-reply
//! backlog so neither side's socket buffer can fill and deadlock the
//! session.

use crate::proto::{ErrorCode, Frame, Reply, Request, OP_SUBMIT};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::io::{BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::Duration;
use viewmap_core::reward::Cash;
use viewmap_core::solicit::VideoUpload;
use viewmap_core::types::{MinuteId, VpId};
use viewmap_core::viewmap::Site;
use viewmap_core::vp::StoredVp;
use vm_crypto::{BigUint, BlindedMessage, RsaPublicKey, Signature};

/// Pipelined submits in flight before the client drains replies. Each
/// reply frame is ~21 bytes, so a window keeps the unread backlog a few
/// KB — far below any socket buffer — while still giving the server a
/// deep run to coalesce.
pub const PIPELINE_WINDOW: usize = 512;

/// Why a client call failed.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure (connection reset, closed mid-frame, ...).
    Io(std::io::Error),
    /// A configured [`ClientConfig`] timeout expired while waiting on
    /// the socket. The session is **poisoned** after this: a reply may
    /// still be in flight, so the byte stream can no longer be paired
    /// with requests — reconnect
    /// ([`VmClient::reconnect_with_backoff`]) before retrying.
    TimedOut,
    /// The peer sent bytes that do not parse as the expected reply.
    Protocol(String),
    /// The service replied with a typed error.
    Remote(ErrorCode, String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "transport: {e}"),
            ClientError::TimedOut => write!(f, "timed out waiting on the service"),
            ClientError::Protocol(d) => write!(f, "protocol violation: {d}"),
            ClientError::Remote(code, detail) if detail.is_empty() => {
                write!(f, "service error: {code}")
            }
            ClientError::Remote(code, detail) => write!(f, "service error: {code} ({detail})"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        // A read/write deadline expiring surfaces as WouldBlock or
        // TimedOut depending on the platform; both mean "the configured
        // timeout fired", which callers handle differently from a dead
        // transport (retry after reconnect vs give up).
        match e.kind() {
            std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut => ClientError::TimedOut,
            _ => ClientError::Io(e),
        }
    }
}

/// Socket deadlines for a [`VmClient`] session. The default (no
/// timeouts) blocks forever — right for trusted in-process tests, wrong
/// against a server that may be dead or gray (a hung service would pin
/// the client thread indefinitely).
#[derive(Clone, Copy, Debug, Default)]
pub struct ClientConfig {
    /// Deadline for each socket read while waiting on a reply. The
    /// timer is per `read(2)` call, so a slow-but-flowing reply stream
    /// does not trip it — only a stalled one.
    pub read_timeout: Option<Duration>,
    /// Deadline for each socket write (trips when the peer stops
    /// draining and both windows fill).
    pub write_timeout: Option<Duration>,
    /// Seed for the reconnect-backoff jitter stream
    /// ([`VmClient::reconnect_with_backoff`]). `None` (the default)
    /// derives a per-client seed from a process-global counter — every
    /// client object gets a distinct, decorrelated stream. Seeded
    /// harnesses (vopr) pin it for bit-reproducible retry schedules.
    pub backoff_seed: Option<u64>,
}

/// A blocking session with a [`crate::server::VmService`].
pub struct VmClient {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
    next_id: u32,
    /// The resolved address we connected to, for reconnects.
    peer: SocketAddr,
    cfg: ClientConfig,
    /// Deterministic per-client jitter stream for reconnect backoff.
    /// Seeded per *client object*, so a fleet of clients retrying after
    /// the same server crash fans out instead of thundering back in
    /// lockstep — while any single client's retry schedule is still
    /// reproducible (the vopr harness replays crash loops by seed).
    backoff_rng: StdRng,
}

impl VmClient {
    /// Connect to a running service with no socket deadlines.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<VmClient> {
        Self::connect_with(addr, ClientConfig::default())
    }

    /// Connect with explicit socket deadlines (see [`ClientConfig`]).
    pub fn connect_with(addr: impl ToSocketAddrs, cfg: ClientConfig) -> std::io::Result<VmClient> {
        let conn = TcpStream::connect(addr)?;
        let peer = conn.peer_addr()?;
        Self::from_stream(conn, peer, cfg)
    }

    fn from_stream(
        conn: TcpStream,
        peer: SocketAddr,
        cfg: ClientConfig,
    ) -> std::io::Result<VmClient> {
        conn.set_nodelay(true).ok();
        conn.set_read_timeout(cfg.read_timeout)?;
        conn.set_write_timeout(cfg.write_timeout)?;
        // Distinct per client object, fixed within it: decorrelated
        // across a fleet, reproducible under a pinned seed. Golden-ratio
        // mixing keeps consecutive counter values far apart in seed
        // space (StdRng streams from adjacent raw seeds correlate).
        static NEXT_BACKOFF_SEED: std::sync::atomic::AtomicU64 =
            std::sync::atomic::AtomicU64::new(0);
        let seed = cfg.backoff_seed.unwrap_or_else(|| {
            0x5eed_bacc_0ff5_0001u64
                ^ NEXT_BACKOFF_SEED
                    .fetch_add(1, std::sync::atomic::Ordering::Relaxed)
                    .wrapping_mul(0x9e37_79b9_7f4a_7c15)
        });
        Ok(VmClient {
            reader: BufReader::new(conn.try_clone()?),
            writer: BufWriter::new(conn),
            next_id: 1,
            peer,
            cfg,
            backoff_rng: StdRng::seed_from_u64(seed),
        })
    }

    /// The address this session is (or was) connected to.
    pub fn peer_addr(&self) -> SocketAddr {
        self.peer
    }

    /// Replace a dead or poisoned session with a fresh connection to
    /// the same address, retrying up to `attempts` times with
    /// exponential backoff starting at `initial`, each sleep jittered
    /// uniformly over `[0.5×, 1.5×]` of its nominal value (so a
    /// restarting server gets time to come back). The jitter is drawn
    /// from this client's seeded stream ([`ClientConfig::backoff_seed`]):
    /// fixed steps would march every client that died in the same crash
    /// back onto the server at the same instants — a thundering herd
    /// re-killing it on cue — while decorrelated streams spread the
    /// retries out, and a pinned seed keeps any single client's
    /// schedule reproducible. Keeps the configured deadlines. On
    /// success the old socket is dropped and request ids continue from
    /// where they were; on failure returns the last connect error and
    /// leaves the (dead) session in place.
    pub fn reconnect_with_backoff(
        &mut self,
        attempts: usize,
        initial: Duration,
    ) -> Result<(), ClientError> {
        assert!(attempts >= 1, "at least one reconnect attempt");
        let mut base = initial;
        let mut last_err: Option<std::io::Error> = None;
        for attempt in 0..attempts {
            if attempt > 0 {
                // Uniform per-mille factor in [500, 1500] — full ±50%
                // jitter. The *base* doubles undisturbed, so the
                // expected schedule is still exponential.
                let per_mille: u32 = self.backoff_rng.gen_range(500..=1500);
                std::thread::sleep(base.saturating_mul(per_mille) / 1000);
                base = base.saturating_mul(2);
            }
            match TcpStream::connect(self.peer)
                .and_then(|conn| Self::from_stream(conn, self.peer, self.cfg))
            {
                Ok(mut fresh) => {
                    fresh.next_id = self.next_id;
                    // The fresh session continues — not restarts — this
                    // client's jitter stream: reconnect #2 must not
                    // replay reconnect #1's sleeps.
                    fresh.backoff_rng = self.backoff_rng.clone();
                    *self = fresh;
                    return Ok(());
                }
                Err(e) => last_err = Some(e),
            }
        }
        Err(ClientError::Io(
            last_err.expect("attempts >= 1 recorded an error"),
        ))
    }

    fn send(&mut self, opcode: u8, payload: Vec<u8>) -> Result<u32, ClientError> {
        let request_id = self.next_id;
        self.next_id = self.next_id.wrapping_add(1);
        Frame {
            request_id,
            opcode,
            payload,
        }
        .write_to(&mut self.writer)?;
        Ok(request_id)
    }

    fn recv(&mut self, request_id: u32, request_opcode: u8) -> Result<Reply, ClientError> {
        let frame = Frame::read_from(&mut self.reader)?.ok_or_else(|| {
            ClientError::Io(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "service closed the session",
            ))
        })?;
        if frame.request_id != request_id {
            return Err(ClientError::Protocol(format!(
                "reply id {} for request {}",
                frame.request_id, request_id
            )));
        }
        Reply::decode(request_opcode, frame.opcode, &frame.payload)
            .ok_or_else(|| ClientError::Protocol("undecodable reply payload".into()))
    }

    /// One synchronous round trip.
    fn call(&mut self, req: &Request) -> Result<Reply, ClientError> {
        let opcode = req.opcode();
        let id = self.send(opcode, req.encode_payload())?;
        self.writer.flush()?;
        match self.recv(id, opcode)? {
            Reply::Err(code, detail) => Err(ClientError::Remote(code, detail)),
            reply => Ok(reply),
        }
    }

    fn expect_ok(&mut self, req: &Request) -> Result<(), ClientError> {
        match self.call(req)? {
            Reply::Ok => Ok(()),
            other => Err(ClientError::Protocol(format!("expected OK, got {other:?}"))),
        }
    }

    /// Submit one anonymized VP.
    pub fn submit(&mut self, vp: &StoredVp) -> Result<(), ClientError> {
        self.expect_ok(&Request::Submit(vp.clone()))
    }

    /// Pipeline a stream of submits: windows of [`PIPELINE_WINDOW`]
    /// frames are written back-to-back, then their replies drained, so
    /// the server sees exactly the coalescable shape. Returns one
    /// outcome per VP, aligned with the input (`Ok(())` accepted,
    /// `Err(code)` the service's typed rejection). A transport or
    /// protocol failure aborts the whole call.
    pub fn submit_pipelined(
        &mut self,
        vps: &[StoredVp],
    ) -> Result<Vec<Result<(), ErrorCode>>, ClientError> {
        let mut outcomes = Vec::with_capacity(vps.len());
        for window in vps.chunks(PIPELINE_WINDOW) {
            let mut ids = Vec::with_capacity(window.len());
            for vp in window {
                ids.push(self.send(OP_SUBMIT, Request::Submit(vp.clone()).encode_payload())?);
            }
            self.writer.flush()?;
            for id in ids {
                outcomes.push(match self.recv(id, OP_SUBMIT)? {
                    Reply::Ok => Ok(()),
                    Reply::Err(code, _) => Err(code),
                    other => {
                        return Err(ClientError::Protocol(format!(
                            "expected OK/ERR, got {other:?}"
                        )))
                    }
                });
            }
        }
        Ok(outcomes)
    }

    /// Submit many VPs in one `SUBMIT_BATCH` frame. Returns per-VP
    /// outcomes aligned with the input. The whole batch must fit one
    /// frame ([`crate::proto::MAX_BODY_BYTES`], ~45k typical records) —
    /// an oversized batch is a [`ClientError::Protocol`], not a panic;
    /// for unbounded streams use
    /// [`submit_pipelined`](Self::submit_pipelined).
    pub fn submit_batch(
        &mut self,
        vps: Vec<StoredVp>,
    ) -> Result<Vec<Result<(), ErrorCode>>, ClientError> {
        let req = Request::SubmitBatch(vps);
        let opcode = req.opcode();
        let payload = req.encode_payload();
        if crate::proto::BODY_PREFIX_BYTES + payload.len() > crate::proto::MAX_BODY_BYTES {
            return Err(ClientError::Protocol(format!(
                "batch encodes to {} bytes, over the {} frame cap — \
                 split it or use submit_pipelined",
                payload.len(),
                crate::proto::MAX_BODY_BYTES
            )));
        }
        let id = self.send(opcode, payload)?;
        self.writer.flush()?;
        let reply = match self.recv(id, opcode)? {
            Reply::Err(code, detail) => return Err(ClientError::Remote(code, detail)),
            reply => reply,
        };
        match reply {
            Reply::BatchResults(rs) => Ok(rs
                .into_iter()
                .map(|r| match r {
                    None => Ok(()),
                    Some(code) => Err(code),
                })
                .collect()),
            other => Err(ClientError::Protocol(format!(
                "expected batch results, got {other:?}"
            ))),
        }
    }

    /// Run an investigation; returns the verified VP ids the server
    /// posted on its solicitation board.
    pub fn investigate(&mut self, minute: MinuteId, site: Site) -> Result<Vec<VpId>, ClientError> {
        match self.call(&Request::Investigate { minute, site })? {
            Reply::VpIds(ids) => Ok(ids),
            other => Err(ClientError::Protocol(format!(
                "expected VP ids, got {other:?}"
            ))),
        }
    }

    /// Post a solicitation for one VP id.
    pub fn solicit(&mut self, id: VpId) -> Result<(), ClientError> {
        self.expect_ok(&Request::Solicit(id))
    }

    /// Upload a solicited video (validated server-side against the
    /// stored cascade).
    pub fn upload_video(&mut self, upload: &VideoUpload) -> Result<(), ClientError> {
        self.expect_ok(&Request::UploadVideo(upload.clone()))
    }

    /// Prove ownership of a rewarded VP; returns the award in cash
    /// units.
    pub fn claim_reward(&mut self, vp_id: VpId, secret: &[u8; 8]) -> Result<usize, ClientError> {
        match self.call(&Request::ClaimReward {
            vp_id,
            secret: *secret,
        })? {
            Reply::Units(u) => Ok(u as usize),
            other => Err(ClientError::Protocol(format!(
                "expected units, got {other:?}"
            ))),
        }
    }

    /// Have the service blind-sign cash messages (consumes the reward
    /// board entry — one issuance per reward).
    pub fn blind_sign(
        &mut self,
        vp_id: VpId,
        secret: &[u8; 8],
        blinded: &[BlindedMessage],
    ) -> Result<Vec<Signature>, ClientError> {
        match self.call(&Request::BlindSign {
            vp_id,
            secret: *secret,
            blinded: blinded.to_vec(),
        })? {
            Reply::Signatures(sigs) => Ok(sigs),
            other => Err(ClientError::Protocol(format!(
                "expected signatures, got {other:?}"
            ))),
        }
    }

    /// Redeem one unit of cash against the double-spending ledger.
    pub fn redeem(&mut self, cash: &Cash) -> Result<(), ClientError> {
        self.expect_ok(&Request::Redeem(cash.clone()))
    }

    /// Fetch the system public key (to verify cash and blind messages
    /// client-side).
    pub fn public_key(&mut self) -> Result<RsaPublicKey, ClientError> {
        match self.call(&Request::PublicKey)? {
            Reply::PublicKey { n, e } => Ok(RsaPublicKey::from_parts(
                BigUint::from_bytes_be(&n),
                BigUint::from_bytes_be(&e),
            )),
            other => Err(ClientError::Protocol(format!(
                "expected public key, got {other:?}"
            ))),
        }
    }

    /// Total VPs the service currently stores.
    pub fn total_vps(&mut self) -> Result<u64, ClientError> {
        match self.call(&Request::TotalVps)? {
            Reply::Count(c) => Ok(c),
            other => Err(ClientError::Protocol(format!(
                "expected count, got {other:?}"
            ))),
        }
    }

    /// Scrape the node's telemetry snapshot: the versioned `vm_obs`
    /// text exposition (`name{label="v"} value` lines, parseable with
    /// [`vm_obs::parse_text`]). Served by primaries and fenced
    /// followers alike.
    pub fn stats(&mut self) -> Result<String, ClientError> {
        match self.call(&Request::Stats)? {
            Reply::Stats(text) => Ok(text),
            other => Err(ClientError::Protocol(format!(
                "expected stats text, got {other:?}"
            ))),
        }
    }
}
