//! `vm-service` — the concurrent network front-end for the ViewMap
//! server.
//!
//! The paper's ViewMap system is a *service*: many uploader vehicles
//! submit view profiles concurrently while investigators build and
//! verify viewmaps against the same store. The core crate's
//! lock-striped [`viewmap_core::server::ViewMapServer`] and its warm
//! batch-ingest machinery were built for exactly that workload; this
//! crate puts a TCP wire in front of them:
//!
//! * [`proto`] — the length-framed, checksummed binary wire format:
//!   frame layout, opcodes, typed error codes, and the request/reply
//!   codecs. VP records on the wire are the storage codec's bytes
//!   ([`vm_store::codec`]), so upload bandwidth gets the same ~3.5×
//!   delta compression the append log gets and the system has exactly
//!   one canonical VP codec.
//! * [`server`] — [`server::VmService`]: a `std::net::TcpListener`
//!   accept loop plus a bounded worker pool fanned out through the
//!   workspace's shared [`viewmap_core::par`] scoped-thread helpers.
//!   Pipelined submits on one session are coalesced into
//!   `submit_batch_warm` calls, so the network path rides the
//!   per-(minute, batch) stripe locking and parallel link-key
//!   precompute instead of paying per-frame locking.
//! * [`client`] — [`client::VmClient`]: a blocking client with
//!   windowed pipelining, used by the `service_session` example, the
//!   multi-client integration suite, and `vm-bench`'s `service_rt_ms`
//!   tier.
//! * [`role`] — replication role/epoch state ([`role::RoleCell`]).
//!   A front-end spawned over a **follower** replica
//!   ([`server::VmService::spawn_with_role`]) serves reads —
//!   investigate, public-key, total-VPs — from the replica state but
//!   rejects every mutating opcode with
//!   [`proto::ErrorCode::NotPrimary`]; promoting the cell flips live
//!   sessions to full service without a listener restart.
//!
//! The front-end serves **anonymous public traffic** only: there is no
//! wire operation for trusted (authority) VPs and none for posting
//! rewards — both stay on the in-process authority surface. A
//! recovered-from-disk server (`ViewMapServer::open` from `vm-store`)
//! drops in unchanged: the service holds an `Arc<ViewMapServer>` and
//! never cares where the state came from.
//!
//! See `ARCHITECTURE.md` at the repository root for the full wire
//! format specification and the concurrency model the service leans
//! on.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod proto;
pub mod role;
pub mod server;

pub use client::{ClientConfig, ClientError, VmClient};
pub use proto::{ErrorCode, Frame, FrameError, Reply, Request};
pub use role::{Role, RoleCell};
pub use server::{ServiceConfig, ServiceHandle, VmService};
