//! Wire-format property suite: frames must round-trip bit-exactly,
//! every strict prefix must read as "need more bytes" (never a decode,
//! never a panic), and any corruption of the checksummed region must be
//! rejected. These are the invariants the session loop leans on when it
//! treats a frame error as connection corruption.

use proptest::prelude::*;
use vm_service::proto::{
    Frame, FrameError, Reply, Request, BODY_PREFIX_BYTES, FRAME_HEADER_BYTES, OP_INVESTIGATE,
    OP_SUBMIT,
};

fn encode(frame: &Frame) -> Vec<u8> {
    let mut out = Vec::new();
    frame.encode(&mut out);
    out
}

proptest! {
    /// Arbitrary payload bytes survive encode → decode exactly, and the
    /// decoder consumes exactly one frame.
    #[test]
    fn arbitrary_frames_roundtrip(
        request_id in any::<u32>(),
        opcode in any::<u8>(),
        payload in proptest::collection::vec(any::<u8>(), 0..2048),
    ) {
        let frame = Frame { request_id, opcode, payload };
        let bytes = encode(&frame);
        prop_assert_eq!(bytes.len(), FRAME_HEADER_BYTES + BODY_PREFIX_BYTES + frame.payload.len());
        let (back, consumed) = Frame::decode(&bytes).unwrap().expect("complete frame decodes");
        prop_assert_eq!(consumed, bytes.len());
        prop_assert_eq!(back, frame);
    }

    /// Every strict prefix is "incomplete", not an error and not a
    /// short decode — the streaming reader must keep waiting, whatever
    /// byte the cut lands on.
    #[test]
    fn every_strict_prefix_is_incomplete(
        request_id in any::<u32>(),
        payload in proptest::collection::vec(any::<u8>(), 0..256),
        frac in 0.0f64..1.0,
    ) {
        let bytes = encode(&Frame { request_id, opcode: OP_SUBMIT, payload });
        let cut = ((bytes.len() as f64) * frac) as usize; // < len: strict prefix
        prop_assert_eq!(Frame::decode(&bytes[..cut]), Ok(None), "cut at {}", cut);
    }

    /// Flipping any bit inside the checksum or body region makes the
    /// frame undecodable (checksum mismatch), and two frames back to
    /// back still decode the *second* cleanly after the first is
    /// consumed — corruption never silently yields wrong payload bytes.
    #[test]
    fn corrupted_checksum_or_body_is_rejected(
        request_id in any::<u32>(),
        payload in proptest::collection::vec(any::<u8>(), 0..512),
        pos_seed in any::<u64>(),
        bit in 0u8..8,
    ) {
        let frame = Frame { request_id, opcode: OP_INVESTIGATE, payload };
        let mut bytes = encode(&frame);
        // Corrupt anywhere from the checksum field onward (offset 8).
        let lo = 8usize;
        let pos = lo + (pos_seed as usize) % (bytes.len() - lo);
        bytes[pos] ^= 1u8 << bit;
        prop_assert_eq!(
            Frame::decode(&bytes),
            Err(FrameError::BadChecksum),
            "flip at byte {} bit {}", pos, bit
        );
    }

    /// Pipelined frames decode in sequence: each decode consumes exactly
    /// one frame and leaves the rest intact.
    #[test]
    fn back_to_back_frames_decode_in_order(
        ids in proptest::collection::vec(any::<u32>(), 1..8),
        payload in proptest::collection::vec(any::<u8>(), 0..64),
    ) {
        let mut stream = Vec::new();
        for &id in &ids {
            Frame { request_id: id, opcode: OP_SUBMIT, payload: payload.clone() }
                .encode(&mut stream);
        }
        let mut rest: &[u8] = &stream;
        for &id in &ids {
            let (frame, consumed) = Frame::decode(rest).unwrap().expect("frame");
            prop_assert_eq!(frame.request_id, id);
            prop_assert_eq!(&frame.payload, &payload);
            rest = &rest[consumed..];
        }
        prop_assert!(rest.is_empty());
    }
}

/// Structured request payloads round-trip through their codecs (the
/// frame layer is covered above; this pins the payload layer for a
/// realistic VP record and the investigate geometry).
#[test]
fn submit_and_investigate_requests_roundtrip() {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use viewmap_core::types::{GeoPos, MinuteId};
    use viewmap_core::viewmap::Site;

    let mut rng = StdRng::seed_from_u64(1);
    let (fin, _) = viewmap_core::vp::exchange_minute(
        &mut rng,
        0,
        |s| GeoPos::new(s as f64 * 9.0, 0.0),
        |s| GeoPos::new(s as f64 * 9.0, 30.0),
    );
    let vp = fin.profile.into_stored();
    let req = Request::Submit(vp.clone());
    let decoded = Request::decode(req.opcode(), &req.encode_payload()).expect("decodes");
    match decoded {
        Request::Submit(back) => {
            assert_eq!(back.id, vp.id);
            assert_eq!(back.vds.len(), vp.vds.len());
            assert_eq!(back.bloom.as_bytes(), vp.bloom.as_bytes());
        }
        other => panic!("wrong variant: {other:?}"),
    }

    let req = Request::Investigate {
        minute: MinuteId(17),
        site: Site {
            center: GeoPos::new(1234.5, -6.75),
            radius_m: 200.0,
        },
    };
    match Request::decode(req.opcode(), &req.encode_payload()).expect("decodes") {
        Request::Investigate { minute, site } => {
            assert_eq!(minute, MinuteId(17));
            assert_eq!(site.center.x.to_bits(), 1234.5f64.to_bits());
            assert_eq!(site.center.y.to_bits(), (-6.75f64).to_bits());
            assert_eq!(site.radius_m.to_bits(), 200.0f64.to_bits());
        }
        other => panic!("wrong variant: {other:?}"),
    }
}

/// Reply payloads round-trip for every OK shape.
#[test]
fn replies_roundtrip() {
    use viewmap_core::types::VpId;
    use vm_crypto::{BigUint, Digest16, Signature};
    use vm_service::proto::{
        ErrorCode, OP_BLIND_SIGN, OP_CLAIM_REWARD, OP_PUBLIC_KEY, OP_SUBMIT_BATCH, OP_TOTAL_VPS,
    };

    let cases: Vec<(u8, Reply)> = vec![
        (OP_SUBMIT, Reply::Ok),
        (
            OP_SUBMIT_BATCH,
            Reply::BatchResults(vec![None, Some(ErrorCode::Duplicate), None]),
        ),
        (
            OP_INVESTIGATE,
            Reply::VpIds(vec![VpId(Digest16([7; 16])), VpId(Digest16([9; 16]))]),
        ),
        (OP_CLAIM_REWARD, Reply::Units(3)),
        (
            OP_BLIND_SIGN,
            Reply::Signatures(vec![Signature(BigUint::from_u64(123456789))]),
        ),
        (
            OP_PUBLIC_KEY,
            Reply::PublicKey {
                n: vec![1, 2, 3],
                e: vec![1, 0, 1],
            },
        ),
        (OP_TOTAL_VPS, Reply::Count(42)),
        (
            OP_SUBMIT,
            Reply::Err(ErrorCode::SuspiciousBloom, "nope".into()),
        ),
    ];
    for (req_op, reply) in cases {
        let back = Reply::decode(req_op, reply.opcode(), &reply.encode_payload())
            .unwrap_or_else(|| panic!("reply for {req_op:#04x} decodes"));
        assert_eq!(back, reply);
    }
}
