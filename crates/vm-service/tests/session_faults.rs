//! Session-level fault suite: the gray-failure behaviors the vopr
//! harness leans on, pinned individually. Partial reads must never
//! corrupt framing ([`Frame::read_from`] against a one-byte-at-a-time
//! transport), idle sessions must be reaped by the server's
//! `idle_timeout` without wedging a worker, a stalled server must
//! surface as [`ClientError::TimedOut`] (not a hang), and
//! [`VmClient::reconnect_with_backoff`] must replace a poisoned session
//! in place.

use std::io::{BufReader, Read};
use std::sync::Arc;
use std::time::Duration;
use vm_service::proto::{Frame, OP_SUBMIT};
use vm_service::{ClientConfig, ClientError, ServiceConfig, VmClient, VmService};

/// A transport that delivers at most `chunk` bytes per `read(2)` call —
/// the pathological version of a congested TCP stream.
struct Trickle<R> {
    inner: R,
    chunk: usize,
}

impl<R: Read> Read for Trickle<R> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        let n = buf.len().min(self.chunk);
        self.inner.read(&mut buf[..n])
    }
}

fn encode_all(frames: &[Frame]) -> Vec<u8> {
    let mut out = Vec::new();
    for f in frames {
        f.encode(&mut out);
    }
    out
}

/// Regression: `Frame::read_from` must loop over short reads. A
/// one-byte-at-a-time transport (and every other odd chunk size) must
/// yield the exact frame sequence, then a clean `None` at EOF.
#[test]
fn read_from_survives_single_byte_delivery() {
    let frames = vec![
        Frame {
            request_id: 1,
            opcode: OP_SUBMIT,
            payload: vec![0xAB; 300],
        },
        Frame {
            request_id: 2,
            opcode: OP_SUBMIT,
            payload: Vec::new(),
        },
        Frame {
            request_id: 3,
            opcode: OP_SUBMIT,
            payload: (0..=255u8).collect(),
        },
    ];
    let stream = encode_all(&frames);
    for chunk in [1usize, 2, 3, 7, 16, 17, 64] {
        // A tiny BufReader capacity keeps the buffered layer from
        // hiding the trickle: every refill sees at most `chunk` bytes.
        let mut r = BufReader::with_capacity(
            8,
            Trickle {
                inner: stream.as_slice(),
                chunk,
            },
        );
        for want in &frames {
            let got = Frame::read_from(&mut r)
                .unwrap_or_else(|e| panic!("chunk {chunk}: {e}"))
                .expect("frame present");
            assert_eq!(&got, want, "chunk size {chunk}");
        }
        assert!(
            Frame::read_from(&mut r).expect("clean EOF").is_none(),
            "chunk size {chunk}: EOF after the last frame"
        );
    }
}

/// EOF strictly inside a frame is `InvalidData` (a torn session), never
/// a silent `None` — for every strict prefix length, delivered a byte
/// at a time.
#[test]
fn read_from_rejects_eof_inside_a_frame_at_every_cut() {
    let frame = Frame {
        request_id: 9,
        opcode: OP_SUBMIT,
        payload: vec![7; 40],
    };
    let stream = encode_all(std::slice::from_ref(&frame));
    for cut in 1..stream.len() {
        let mut r = BufReader::with_capacity(
            8,
            Trickle {
                inner: &stream[..cut],
                chunk: 1,
            },
        );
        let err = Frame::read_from(&mut r).expect_err("mid-frame EOF must error");
        // Mid-header cuts surface as InvalidData ("closed mid-frame"),
        // mid-body cuts as `read_exact`'s UnexpectedEof — both are torn
        // sessions; neither may masquerade as a clean end-of-stream.
        assert!(
            matches!(
                err.kind(),
                std::io::ErrorKind::InvalidData | std::io::ErrorKind::UnexpectedEof
            ),
            "cut at byte {cut}: {err}"
        );
    }
}

/// An idle session is reaped after `idle_timeout` (freeing its worker
/// for new sessions), while a slow-but-active session — one that keeps
/// issuing calls — is left alone: the timer is per read, not per
/// session.
#[test]
fn idle_sessions_are_reaped_but_active_ones_survive() {
    use rand::SeedableRng;
    let mut rng = rand::rngs::StdRng::seed_from_u64(1);
    let srv = Arc::new(viewmap_core::server::ViewMapServer::new(
        &mut rng,
        512,
        viewmap_core::viewmap::ViewmapConfig::default(),
    ));
    let handle = VmService::spawn(
        Arc::clone(&srv),
        "127.0.0.1:0",
        ServiceConfig {
            workers: 2,
            idle_timeout: Some(Duration::from_millis(100)),
            ..ServiceConfig::default()
        },
    )
    .unwrap();
    let addr = handle.addr();

    // Active session: calls spaced under the deadline keep it alive
    // well past several idle windows.
    let mut active = VmClient::connect(addr).unwrap();
    for _ in 0..8 {
        std::thread::sleep(Duration::from_millis(50));
        assert_eq!(active.total_vps().expect("active session survives"), 0);
    }

    // Idle session: no traffic for several windows — the server hangs
    // up, which the next call observes as a transport error.
    let mut idle = VmClient::connect(addr).unwrap();
    assert_eq!(idle.total_vps().unwrap(), 0);
    std::thread::sleep(Duration::from_millis(500));
    assert!(
        idle.total_vps().is_err(),
        "session should have been reaped while idle"
    );
    // The reap freed the worker: a fresh session gets served even
    // though `workers == 2` and two sessions were opened before it.
    let mut fresh = VmClient::connect(addr).unwrap();
    assert_eq!(fresh.total_vps().unwrap(), 0);
}

/// A server that accepts but never replies must trip the client's
/// configured read deadline as `ClientError::TimedOut` instead of
/// blocking the caller forever.
#[test]
fn stalled_server_times_out_the_client() {
    let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let hold = std::thread::spawn(move || {
        // Accept and hold the socket open, replying with nothing.
        listener.accept().map(|(conn, _)| conn)
    });

    let mut client = VmClient::connect_with(
        addr,
        ClientConfig {
            read_timeout: Some(Duration::from_millis(150)),
            write_timeout: Some(Duration::from_millis(150)),
            ..ClientConfig::default()
        },
    )
    .unwrap();
    let start = std::time::Instant::now();
    match client.total_vps() {
        Err(ClientError::TimedOut) => {}
        other => panic!("expected TimedOut, got {other:?}"),
    }
    assert!(
        start.elapsed() < Duration::from_secs(5),
        "deadline fired, not a hang"
    );
    drop(hold.join().unwrap());
}

/// `reconnect_with_backoff` replaces a reaped (poisoned) session in
/// place — same address, same deadlines — and the replacement session
/// works; against a dead address it retries `attempts` times and then
/// reports the last connect error.
#[test]
fn reconnect_with_backoff_replaces_a_poisoned_session() {
    use rand::SeedableRng;
    let mut rng = rand::rngs::StdRng::seed_from_u64(2);
    let srv = Arc::new(viewmap_core::server::ViewMapServer::new(
        &mut rng,
        512,
        viewmap_core::viewmap::ViewmapConfig::default(),
    ));
    let mut handle = VmService::spawn(
        Arc::clone(&srv),
        "127.0.0.1:0",
        ServiceConfig {
            workers: 2,
            idle_timeout: Some(Duration::from_millis(80)),
            ..ServiceConfig::default()
        },
    )
    .unwrap();
    let addr = handle.addr();

    let mut client = VmClient::connect(addr).unwrap();
    assert_eq!(client.peer_addr(), addr);
    assert_eq!(client.total_vps().unwrap(), 0);

    // Let the server reap us, observe the dead session, then recover it
    // without the caller juggling a second client value.
    std::thread::sleep(Duration::from_millis(400));
    assert!(client.total_vps().is_err(), "session was reaped");
    client
        .reconnect_with_backoff(3, Duration::from_millis(10))
        .expect("service is up; reconnect succeeds");
    assert_eq!(client.total_vps().unwrap(), 0, "fresh session works");

    // With the service gone, every attempt fails and the last error
    // comes back typed as Io.
    handle.shutdown();
    let start = std::time::Instant::now();
    match client.reconnect_with_backoff(2, Duration::from_millis(5)) {
        Err(ClientError::Io(_)) => {}
        // A dead loopback backlog can also accept-then-reset; the only
        // wrong outcomes are success with a working session or a hang.
        Ok(()) => assert!(
            client.total_vps().is_err(),
            "no live service behind the port"
        ),
        other => panic!("expected Io error, got {other:?}"),
    }
    assert!(start.elapsed() < Duration::from_secs(5));
}
