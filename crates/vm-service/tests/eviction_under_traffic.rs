//! Eviction racing live traffic: `evict_minutes_before` sweeps old
//! minutes (memory, id index, and WAL segments) while wire clients are
//! concurrently submitting into newer minutes and investigating — and
//! afterwards disk, memory, and index must agree exactly, including
//! across a full crash/recover cycle.
//!
//! The race surface under test is the server's eviction locking: the
//! sweep holds every id stripe across the WAL segment removal, so a
//! concurrent submit can never land an index entry for a bucket (or a
//! WAL record for a segment) that the sweep is deleting under it.

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::path::PathBuf;
use std::sync::Arc;
use viewmap_core::server::ViewMapServer;
use viewmap_core::types::{GeoPos, MinuteId, VpId, SECONDS_PER_VP};
use viewmap_core::viewmap::{Site, ViewmapConfig};
use viewmap_core::vp::StoredVp;
use vm_service::{ServiceConfig, VmClient, VmService};
use vm_store::{PersistentServer, StoreConfig};

const CLIENTS: usize = 4;
const OLD_MINUTES: u64 = 5;
const VPS_PER_MINUTE: u64 = 40;

struct TempDir(PathBuf);
impl TempDir {
    fn new(tag: &str) -> TempDir {
        let dir = std::env::temp_dir().join(format!("vm_evict_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        TempDir(dir)
    }
}
impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn synthetic_vp(tag: u64, minute: u64) -> StoredVp {
    use viewmap_core::vd::ViewDigest;
    let mut id_bytes = [0u8; 16];
    id_bytes[..8].copy_from_slice(&tag.to_le_bytes());
    id_bytes[8..].copy_from_slice(&minute.to_le_bytes());
    let id = VpId(vm_crypto::Digest16(id_bytes));
    let start = minute * SECONDS_PER_VP;
    let vds: Vec<ViewDigest> = (1..=SECONDS_PER_VP as u16)
        .map(|seq| ViewDigest {
            seq,
            flags: 0,
            time: start + seq as u64,
            loc: GeoPos::new(tag as f64 % 400.0 + seq as f64 * 8.0, (tag % 37) as f64),
            file_size: seq as u64 * 64,
            initial_loc: GeoPos::new(tag as f64 % 400.0, 0.0),
            vp_id: id,
            hash: vm_crypto::Digest16(id_bytes),
        })
        .collect();
    StoredVp::new(id, vds, viewmap_core::bloom::BloomFilter::default(), false)
}

/// Minutes that still have a `.vmseg` segment on disk.
fn disk_minutes(dir: &std::path::Path) -> Vec<u64> {
    let mut v: Vec<u64> = std::fs::read_dir(dir)
        .unwrap()
        .filter_map(|e| {
            let name = e.unwrap().file_name();
            vm_store::segment::parse_segment_file_name(name.to_str()?).map(|m| m.0)
        })
        .collect();
    v.sort_unstable();
    v
}

#[test]
fn eviction_races_wire_traffic_without_losing_consistency() {
    let tmp = TempDir::new("race");
    let vmcfg = ViewmapConfig::default();

    // Preload OLD_MINUTES durable minutes, the data eviction will sweep.
    let mut rng = StdRng::seed_from_u64(7);
    let (srv, _) =
        ViewMapServer::open(&mut rng, 512, vmcfg, &tmp.0, StoreConfig::default()).unwrap();
    for minute in 0..OLD_MINUTES {
        for t in 0..VPS_PER_MINUTE {
            srv.submit_trusted(synthetic_vp(minute * 1_000 + t, minute))
                .unwrap();
        }
    }
    srv.sync_wal().unwrap();
    assert_eq!(disk_minutes(&tmp.0).len() as u64, OLD_MINUTES);
    let srv = Arc::new(srv);

    let handle = VmService::spawn(
        Arc::clone(&srv),
        "127.0.0.1:0",
        ServiceConfig {
            workers: CLIENTS,
            ..ServiceConfig::default()
        },
    )
    .unwrap();
    let addr = handle.addr();

    let site = Site {
        center: GeoPos::new(200.0, 0.0),
        radius_m: 400.0,
    };

    // Clients pour fresh VPs into minutes >= OLD_MINUTES (each client
    // owns one minute) and run investigations, while the main thread
    // ramps the eviction cutoff across the old minutes.
    std::thread::scope(|scope| {
        for c in 0..CLIENTS as u64 {
            scope.spawn(move || {
                let minute = OLD_MINUTES + c;
                let mut client = VmClient::connect(addr).expect("connect");
                for round in 0..4u64 {
                    let vps: Vec<StoredVp> = (0..VPS_PER_MINUTE)
                        .map(|t| synthetic_vp(10_000 + c * 10_000 + round * 100 + t, minute))
                        .collect();
                    let outcomes = client.submit_pipelined(&vps).expect("pipeline");
                    assert!(
                        outcomes.iter().all(|r| r.is_ok()),
                        "client {c} round {round}"
                    );
                    // Touch both a doomed minute and our own: neither
                    // may panic or return garbage mid-eviction.
                    let _ = client.investigate(MinuteId(round), site).expect("old");
                    let _ = client.investigate(MinuteId(minute), site).expect("own");
                }
            });
        }
        // Concurrently sweep the old minutes one cutoff at a time.
        let sweeper = Arc::clone(&srv);
        scope.spawn(move || {
            let mut evicted = 0usize;
            for cutoff in 1..=OLD_MINUTES {
                evicted += sweeper.evict_minutes_before(MinuteId(cutoff));
                std::thread::yield_now();
            }
            assert_eq!(
                evicted as u64,
                OLD_MINUTES * VPS_PER_MINUTE,
                "every preloaded VP evicted exactly once"
            );
        });
    });
    drop(handle);

    // ── Memory, index, and disk agree. ───────────────────────────────
    let survivors: Vec<MinuteId> = (0..CLIENTS as u64)
        .map(|c| MinuteId(OLD_MINUTES + c))
        .collect();
    assert_eq!(srv.stored_minutes(), survivors, "old minutes are gone");
    assert_eq!(
        srv.total_vps() as u64,
        CLIENTS as u64 * 4 * VPS_PER_MINUTE,
        "exactly the live traffic survives"
    );
    for minute in 0..OLD_MINUTES {
        assert!(srv.minute_vps(MinuteId(minute)).is_empty());
        for t in 0..VPS_PER_MINUTE {
            let id = synthetic_vp(minute * 1_000 + t, minute).id;
            assert!(srv.lookup_vp(id).is_none(), "index entry swept with bucket");
        }
    }
    for &minute in &survivors {
        for vp in srv.minute_vps(minute) {
            let hit = srv.lookup_vp(vp.id).expect("survivor indexed");
            assert!(Arc::ptr_eq(&hit, &vp), "index routes into the bucket");
        }
    }
    srv.sync_wal().unwrap();
    assert_eq!(
        disk_minutes(&tmp.0),
        survivors.iter().map(|m| m.0).collect::<Vec<_>>(),
        "evicted WAL segments removed, survivors' retained"
    );

    // ── The surviving state round-trips through crash recovery. ──────
    let digest = srv.state_digest();
    drop(srv); // releases the store's dir lock
    let mut rng = StdRng::seed_from_u64(8);
    let (back, report) =
        ViewMapServer::open(&mut rng, 512, vmcfg, &tmp.0, StoreConfig::default()).unwrap();
    assert_eq!(report.records as u64, CLIENTS as u64 * 4 * VPS_PER_MINUTE);
    assert_eq!(report.torn_segments, 0);
    assert_eq!(back.stored_minutes(), survivors);
    assert_eq!(back.state_digest(), digest, "recovery reproduces the state");
}
