//! End-to-end service suite: a `ViewMapServer` recovered from a
//! `vm-store` append log serves 8 concurrent `VmClient` sessions over
//! loopback, and every observable outcome — per-submit accept/reject,
//! bucket contents, investigation results, the reward round — equals
//! what direct in-process calls produce on a single-threaded oracle
//! server fed the same operations.
//!
//! Determinism setup: each client owns one minute, so per-minute bucket
//! order is each client's own pipelined order regardless of how the 8
//! sessions interleave — which is what lets the oracle comparison be
//! exact (ids, order, and investigation output), not merely set-based.
//! A separate case hammers one *shared* minute from all 8 clients and
//! checks the order-independent invariants (accept counts, membership,
//! index routing).

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::path::PathBuf;
use std::sync::Arc;
use viewmap_core::server::ViewMapServer;
use viewmap_core::solicit::VideoUpload;
use viewmap_core::types::{GeoPos, MinuteId, VpId, SECONDS_PER_VP};
use viewmap_core::upload::AnonymousSubmission;
use viewmap_core::viewmap::{Site, ViewmapConfig};
use viewmap_core::vp::{StoredVp, VpBuilder, VpKind};
use vm_service::proto::ErrorCode;
use vm_service::{ServiceConfig, VmClient, VmService};
use vm_store::{PersistentServer, StoreConfig};

const CLIENTS: usize = 8;
const VPS_PER_CLIENT: u64 = 30;

struct TempDir(PathBuf);
impl TempDir {
    fn new(tag: &str) -> TempDir {
        let dir = std::env::temp_dir().join(format!("vm_service_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        TempDir(dir)
    }
}
impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// Synthetic VP: 60 well-formed VDs near `(tag, minute)`-derived
/// coordinates; ids are unique per (tag, minute).
fn synthetic_vp(tag: u64, minute: u64) -> StoredVp {
    use viewmap_core::vd::ViewDigest;
    let mut id_bytes = [0u8; 16];
    id_bytes[..8].copy_from_slice(&tag.to_le_bytes());
    id_bytes[8..].copy_from_slice(&minute.to_le_bytes());
    let id = VpId(vm_crypto::Digest16(id_bytes));
    let start = minute * SECONDS_PER_VP;
    let vds: Vec<ViewDigest> = (1..=SECONDS_PER_VP as u16)
        .map(|seq| ViewDigest {
            seq,
            flags: 0,
            time: start + seq as u64,
            loc: GeoPos::new(tag as f64 % 400.0 + seq as f64 * 8.0, (tag % 37) as f64),
            file_size: seq as u64 * 64,
            initial_loc: GeoPos::new(tag as f64 % 400.0, 0.0),
            vp_id: id,
            hash: vm_crypto::Digest16(id_bytes),
        })
        .collect();
    StoredVp::new(id, vds, viewmap_core::bloom::BloomFilter::default(), false)
}

/// A genuine VP with a real cascade (so video upload validates) plus
/// its 60 one-second chunks, recorded inside `minute`.
fn genuine_vp(seed: u64, minute: u64) -> (viewmap_core::vp::FinalizedMinute, Vec<Vec<u8>>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let start = minute * SECONDS_PER_VP;
    let mut b = VpBuilder::new(
        &mut rng,
        start,
        GeoPos::new(0.0, seed as f64),
        VpKind::Actual,
    );
    let chunks: Vec<Vec<u8>> = (0..SECONDS_PER_VP)
        .map(|i| (0..64).map(|j| ((seed + i * 3 + j) % 251) as u8).collect())
        .collect();
    for (i, c) in chunks.iter().enumerate() {
        b.record_second(c, GeoPos::new(i as f64 * 8.0, seed as f64));
    }
    (b.finalize(), chunks)
}

fn site() -> Site {
    Site {
        center: GeoPos::new(200.0, 0.0),
        radius_m: 400.0,
    }
}

fn submission(vp: StoredVp) -> AnonymousSubmission {
    AnonymousSubmission { session_id: 0, vp }
}

/// The per-client workload at its own minute: a trusted anchor is
/// seeded by the authority (generation 1); the client then pipelines
/// `VPS_PER_CLIENT` ordinary VPs, one duplicate, and one malformed VP.
fn client_vps(client: usize) -> Vec<StoredVp> {
    let minute = client as u64;
    let base = 1_000 + client as u64 * 10_000;
    let mut vps: Vec<StoredVp> = (0..VPS_PER_CLIENT)
        .map(|t| synthetic_vp(base + t, minute))
        .collect();
    vps.push(synthetic_vp(base, minute)); // duplicate of the first
    let mut malformed = synthetic_vp(base + 9_999, minute);
    malformed.vds.truncate(10);
    vps.push(malformed);
    vps
}

fn expected_outcomes() -> Vec<Result<(), ErrorCode>> {
    let mut expect: Vec<Result<(), ErrorCode>> = (0..VPS_PER_CLIENT).map(|_| Ok(())).collect();
    expect.push(Err(ErrorCode::Duplicate));
    expect.push(Err(ErrorCode::MalformedVds));
    expect
}

#[test]
fn recovered_server_serves_eight_concurrent_sessions_like_the_oracle() {
    let tmp = TempDir::new("concurrent");
    let store_cfg = StoreConfig::default();
    let vmcfg = ViewmapConfig::default();

    // ── Generation 1: seed trusted anchors + a genuine VP per minute,
    //    durably, then shut down. ──────────────────────────────────────
    let genuine: Vec<(viewmap_core::vp::FinalizedMinute, Vec<Vec<u8>>)> = (0..CLIENTS)
        .map(|c| genuine_vp(500 + c as u64, c as u64))
        .collect();
    {
        let mut rng = StdRng::seed_from_u64(1);
        let (srv, report) = ViewMapServer::open(&mut rng, 512, vmcfg, &tmp.0, store_cfg).unwrap();
        assert!(report.warnings().is_empty(), "first boot: no warnings");
        for (c, (fin, _)) in genuine.iter().enumerate() {
            let mut anchor = synthetic_vp(c as u64, c as u64);
            anchor.trusted = true;
            srv.submit_trusted(anchor).unwrap();
            srv.submit(submission(fin.profile.clone().into_stored()))
                .unwrap();
        }
        srv.sync_wal().unwrap();
    }

    // ── Generation 2: recover from disk; the persisted keyfile means a
    //    clean restart raises no warnings at all. ──────────────────────
    let mut rng = StdRng::seed_from_u64(2);
    let (srv, report) = ViewMapServer::open(&mut rng, 512, vmcfg, &tmp.0, store_cfg).unwrap();
    assert_eq!(report.records, 2 * CLIENTS);
    assert!(
        report.warnings().is_empty(),
        "keyfile restart: {:?}",
        report.warnings()
    );
    let srv = Arc::new(srv);

    // ── Oracle: a single-threaded in-process server fed the identical
    //    operations in a canonical order. ─────────────────────────────
    let mut orng = StdRng::seed_from_u64(3);
    let oracle = ViewMapServer::new(&mut orng, 512, vmcfg);
    for (c, (fin, _)) in genuine.iter().enumerate() {
        let mut anchor = synthetic_vp(c as u64, c as u64);
        anchor.trusted = true;
        oracle.submit_trusted(anchor).unwrap();
        oracle
            .submit(submission(fin.profile.clone().into_stored()))
            .unwrap();
    }
    for c in 0..CLIENTS {
        let results: Vec<Result<(), ErrorCode>> = client_vps(c)
            .into_iter()
            .map(|vp| oracle.submit(submission(vp)).map_err(ErrorCode::from))
            .collect();
        assert_eq!(results, expected_outcomes(), "oracle client {c}");
    }

    // ── Serve, and drive 8 concurrent sessions. ──────────────────────
    let handle = VmService::spawn(
        Arc::clone(&srv),
        "127.0.0.1:0",
        ServiceConfig {
            workers: CLIENTS,
            ..ServiceConfig::default()
        },
    )
    .unwrap();
    let addr = handle.addr();

    let remote_investigations: Vec<Vec<VpId>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|c| {
                let genuine = &genuine;
                scope.spawn(move || {
                    let minute = MinuteId(c as u64);
                    let mut client = VmClient::connect(addr).expect("connect");
                    let outcomes = client.submit_pipelined(&client_vps(c)).expect("pipeline");
                    assert_eq!(outcomes, expected_outcomes(), "client {c} outcomes");
                    // Investigate own minute over the wire.
                    let ids = client.investigate(minute, site()).expect("investigate");
                    // Upload the genuine video end to end: solicit, then
                    // upload; the server re-derives the cascade.
                    let vp_id = genuine[c].0.profile.id();
                    client.solicit(vp_id).expect("solicit");
                    client
                        .upload_video(&VideoUpload {
                            vp_id,
                            chunks: genuine[c].1.clone(),
                        })
                        .expect("genuine video validates");
                    // A wrong-chunk upload is rejected with the typed code.
                    let mut bad = genuine[c].1.clone();
                    bad[0][0] ^= 1;
                    match client.upload_video(&VideoUpload { vp_id, chunks: bad }) {
                        Err(vm_service::ClientError::Remote(ErrorCode::ChainInvalid, _)) => {}
                        other => panic!("client {c}: expected ChainInvalid, got {other:?}"),
                    }
                    ids
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    // ── Equivalence with the oracle. ─────────────────────────────────
    assert_eq!(srv.total_vps(), oracle.total_vps());
    for (c, remote) in remote_investigations.iter().enumerate() {
        let minute = MinuteId(c as u64);
        let served: Vec<VpId> = srv.minute_vps(minute).iter().map(|vp| vp.id).collect();
        let expect: Vec<VpId> = oracle.minute_vps(minute).iter().map(|vp| vp.id).collect();
        assert_eq!(served, expect, "minute {c} bucket order");
        let direct = oracle.investigate(minute, site());
        assert_eq!(remote, &direct, "minute {c} investigation");
        // Index routing survives recovery + concurrent ingest.
        for id in served {
            assert_eq!(srv.lookup_vp(id).unwrap().id, id);
        }
    }

    drop(handle); // graceful shutdown joins every service thread
                  // The server (and its WAL) outlive the service: still usable.
    assert!(srv.total_vps() > 0);
}

#[test]
fn shared_minute_hammering_keeps_invariants() {
    // All 8 clients write disjoint ids into the SAME minute; order is
    // nondeterministic, so check the order-independent invariants.
    let vmcfg = ViewmapConfig::default();
    let mut rng = StdRng::seed_from_u64(10);
    let srv = Arc::new(ViewMapServer::new(&mut rng, 512, vmcfg));
    let handle = VmService::spawn(
        Arc::clone(&srv),
        "127.0.0.1:0",
        ServiceConfig {
            workers: CLIENTS,
            ..ServiceConfig::default()
        },
    )
    .unwrap();
    let addr = handle.addr();

    let per_client = 200u64;
    std::thread::scope(|scope| {
        for c in 0..CLIENTS as u64 {
            scope.spawn(move || {
                let mut client = VmClient::connect(addr).expect("connect");
                // Every id is sent twice (two pipelined passes): exactly
                // one accept per id regardless of interleaving.
                let vps: Vec<StoredVp> = (0..per_client)
                    .map(|t| synthetic_vp(100_000 + c * per_client + t, 0))
                    .collect();
                let first = client.submit_pipelined(&vps).expect("pass 1");
                assert!(first.iter().all(|r| r.is_ok()), "client {c} pass 1");
                let second = client.submit_pipelined(&vps).expect("pass 2");
                assert!(
                    second.iter().all(|r| r == &Err(ErrorCode::Duplicate)),
                    "client {c} pass 2 all duplicates"
                );
                let total = client.total_vps().expect("total over the wire");
                assert!(total >= per_client, "client {c} sees its own VPs");
            });
        }
    });

    let expect = CLIENTS as u64 * per_client;
    assert_eq!(srv.total_vps() as u64, expect, "one accept per id");
    let bucket = srv.minute_vps(MinuteId(0));
    assert_eq!(bucket.len() as u64, expect);
    let mut seen = std::collections::HashSet::new();
    for vp in &bucket {
        assert!(seen.insert(vp.id), "id stored twice: {:?}", vp.id);
        let hit = srv.lookup_vp(vp.id).expect("indexed");
        assert!(Arc::ptr_eq(&hit, vp), "index routes to the bucket record");
        assert!(vp.is_key_warm(), "network submits ride the warm batch path");
    }
}

#[test]
fn reward_round_trips_over_the_wire_and_old_cash_survives_restart() {
    let tmp = TempDir::new("reward");
    let store_cfg = StoreConfig::default();
    let vmcfg = ViewmapConfig::default();
    let (fin, _chunks) = genuine_vp(77, 0);
    let vp_id = fin.profile.id();
    let secret = fin.secret;

    // Generation 1 issues cash under its key, then "crashes".
    let old_cash = {
        let mut rng = StdRng::seed_from_u64(20);
        let (srv, _) = ViewMapServer::open(&mut rng, 512, vmcfg, &tmp.0, store_cfg).unwrap();
        srv.submit(submission(fin.profile.clone().into_stored()))
            .unwrap();
        srv.post_reward(vp_id, 2);
        let mut wallet = viewmap_core::reward::Wallet::new();
        let (pending, blinded) = wallet.prepare(&mut rng, srv.public_key(), 2);
        let signed = srv
            .issue_blind_signatures(vp_id, &secret, &blinded)
            .unwrap();
        assert_eq!(wallet.accept_signed(srv.public_key(), pending, &signed), 2);
        srv.sync_wal().unwrap();
        wallet.cash
    };

    // Generation 2 recovers; the reward board is RAM-only (gone) but
    // the VP store survives. Re-post the reward (human review happens
    // server-side) and run the whole round over the wire.
    let mut rng = StdRng::seed_from_u64(21);
    let (srv, report) = ViewMapServer::open(&mut rng, 512, vmcfg, &tmp.0, store_cfg).unwrap();
    assert!(!report.fresh_signing_key, "keyfile persisted the RSA key");
    let srv = Arc::new(srv);
    srv.post_reward(vp_id, 3);
    let handle =
        VmService::spawn(Arc::clone(&srv), "127.0.0.1:0", ServiceConfig::default()).unwrap();
    let mut client = VmClient::connect(handle.addr()).unwrap();

    // Wrong secret is a typed remote rejection.
    match client.claim_reward(vp_id, &[0u8; 8]) {
        Err(vm_service::ClientError::Remote(ErrorCode::BadOwnershipProof, _)) => {}
        other => panic!("expected BadOwnershipProof, got {other:?}"),
    }
    let units = client.claim_reward(vp_id, &secret).unwrap();
    assert_eq!(units, 3);

    // Blind → sign (over the wire) → unblind → redeem (over the wire).
    let pk = client.public_key().unwrap();
    assert_eq!(&pk, srv.public_key(), "wire key equals the server's");
    let mut wallet = viewmap_core::reward::Wallet::new();
    let mut wrng = StdRng::seed_from_u64(22);
    let (pending, blinded) = wallet.prepare(&mut wrng, &pk, units);
    let signed = client.blind_sign(vp_id, &secret, &blinded).unwrap();
    assert_eq!(wallet.accept_signed(&pk, pending, &signed), 3);
    // Board entry consumed: a second issuance is NotOnBoard.
    match client.blind_sign(vp_id, &secret, &blinded) {
        Err(vm_service::ClientError::Remote(ErrorCode::NotOnBoard, _)) => {}
        other => panic!("expected NotOnBoard, got {other:?}"),
    }
    for cash in &wallet.cash {
        client.redeem(cash).unwrap();
    }
    match client.redeem(&wallet.cash[0]) {
        Err(vm_service::ClientError::Remote(ErrorCode::DoubleSpend, _)) => {}
        other => panic!("expected DoubleSpend, got {other:?}"),
    }

    // The signing key rode the keyfile across the restart, so cash
    // issued before the crash still verifies — and still double-spends.
    client.redeem(&old_cash[0]).unwrap();
    match client.redeem(&old_cash[0]) {
        Err(vm_service::ClientError::Remote(ErrorCode::DoubleSpend, _)) => {}
        other => panic!("expected DoubleSpend for replayed pre-restart cash, got {other:?}"),
    }
}

#[test]
fn shutdown_is_graceful_and_idempotent() {
    let mut rng = StdRng::seed_from_u64(30);
    let srv = Arc::new(ViewMapServer::new(&mut rng, 512, ViewmapConfig::default()));
    let mut handle = VmService::spawn(
        Arc::clone(&srv),
        "127.0.0.1:0",
        ServiceConfig {
            workers: 2,
            ..ServiceConfig::default()
        },
    )
    .unwrap();
    let addr = handle.addr();

    // A connected client with an idle session holds a worker; shutdown
    // must still complete (it closes the session socket under us).
    let mut client = VmClient::connect(addr).unwrap();
    assert_eq!(client.total_vps().unwrap(), 0);
    handle.shutdown();
    handle.shutdown(); // idempotent

    // The session is dead from the client's point of view...
    assert!(client.total_vps().is_err(), "session closed by shutdown");
    // ...and nobody is listening for new sessions.
    let late = VmClient::connect(addr);
    if let Ok(mut late) = late {
        // (A TCP stack may accept briefly into a dead backlog; any
        // actual use of the session must fail.)
        assert!(late.total_vps().is_err(), "no service behind the port");
    }
}
