//! The per-second protocol simulation.
//!
//! Every simulated second, each vehicle extends its cascaded digest chain
//! and broadcasts the resulting VD; the DSRC channel decides which
//! neighbors receive it (geometric line of sight through the building
//! field, per-minute vehicle-obstruction and slow-shadowing states per
//! pair). On each minute boundary every vehicle finalizes its VP,
//! fabricates ⌈α·m⌉ guard VPs via the road router, and uploads everything
//! through the anonymity channel.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;
use viewmap_core::guard::{create_guards, GuardConfig};
use viewmap_core::tracker::MinuteVps;
use viewmap_core::types::GeoPos;
use viewmap_core::upload::AnonymousChannel;
use viewmap_core::vp::{StoredVp, VpBuilder, VpKind};
use vm_geo::{BuildingIndex, CityParams, Rect, RoadNetwork, Router};
use vm_mobility::{MobilityConfig, SpeedScenario, TrafficSim};
use vm_radio::{Blockage, Channel, Environment};

/// Configuration of one protocol simulation run.
#[derive(Clone, Debug)]
pub struct SimConfig {
    /// Number of vehicles.
    pub vehicles: usize,
    /// Simulated minutes.
    pub minutes: u64,
    /// Speed scenario (Section 8 sweeps 30/50/70/mix km/h).
    pub speed: SpeedScenario,
    /// Guard-VP rate α (0.0 disables guard VPs — the paper's reference
    /// curves).
    pub alpha: f64,
    /// Radio environment (buildings + traffic obstruction).
    pub environment: Environment,
    /// Road-network generator parameters.
    pub city: CityParams,
    /// Retain full `StoredVp` sets per minute (needed for viewmap
    /// experiments; costs memory).
    pub keep_vps: bool,
    /// Synthetic per-second video chunk size in bytes. Real dashcams write
    /// ~875 KB/s; hashing treats bytes as opaque so small chunks keep the
    /// simulation fast without changing protocol behavior.
    pub chunk_bytes: usize,
}

impl SimConfig {
    /// Section 6 small-scale privacy setting: n vehicles in 4×4 km².
    pub fn small(vehicles: usize, minutes: u64) -> Self {
        SimConfig {
            vehicles,
            minutes,
            speed: SpeedScenario::Mix,
            alpha: 0.1,
            environment: Environment::residential(),
            city: CityParams::small_area(),
            keep_vps: false,
            chunk_bytes: 32,
        }
    }

    /// Rush hour: a dense platoon crawling through downtown. Many
    /// vehicles in a small area at low fixed speed maximizes mutual
    /// witnessing and therefore viewmap edge count.
    pub fn rush_hour(vehicles: usize, minutes: u64) -> Self {
        SimConfig {
            vehicles,
            minutes,
            speed: SpeedScenario::Fixed(25.0),
            alpha: 0.1,
            environment: Environment::downtown(),
            city: CityParams {
                width_m: 1_600.0,
                height_m: 1_600.0,
                block_m: 200.0,
                jitter: 0.15,
                keep_link_prob: 0.95,
                diagonals: 1,
            },
            keep_vps: true,
            chunk_bytes: 32,
        }
    }

    /// Rural sparse: few vehicles scattered over long country blocks —
    /// linkage starvation, so guard VPs carry most of the anonymity set.
    pub fn rural_sparse(vehicles: usize, minutes: u64) -> Self {
        SimConfig {
            vehicles,
            minutes,
            speed: SpeedScenario::Fixed(70.0),
            alpha: 0.1,
            environment: Environment::rural(),
            city: CityParams::rural(),
            keep_vps: true,
            chunk_bytes: 32,
        }
    }

    /// Section 8 large-scale setting: 1000 vehicles in 8×8 km².
    pub fn large(speed: SpeedScenario, minutes: u64) -> Self {
        SimConfig {
            vehicles: 1000,
            minutes,
            speed,
            alpha: 0.1,
            environment: Environment::downtown(),
            city: CityParams::seoul_like(),
            keep_vps: false,
            chunk_bytes: 32,
        }
    }
}

/// Everything recorded about one simulated minute.
#[derive(Clone, Debug)]
pub struct MinuteRecord {
    /// Tracker view: start/end of every uploaded VP (actual + guard),
    /// in upload order.
    pub tracker: MinuteVps,
    /// For each vehicle, the index of its *actual* VP in `tracker`.
    pub actual_idx: Vec<usize>,
    /// Full stored VPs (same indexing as `tracker`) if `keep_vps` was set.
    pub vps: Option<Vec<StoredVp>>,
    /// Number of guard VPs uploaded this minute.
    pub guard_count: usize,
    /// Mean neighbor count over vehicles this minute.
    pub mean_neighbors: f64,
}

/// Output of a protocol simulation run.
#[derive(Clone, Debug)]
pub struct SimOutput {
    /// Per-minute records.
    pub minutes: Vec<MinuteRecord>,
    /// Average LOS contact duration between vehicle pairs, seconds
    /// (Fig. 22c).
    pub avg_contact_s: f64,
    /// Total actual VPs produced.
    pub actual_vps: usize,
    /// Total guard VPs produced.
    pub guard_vps: usize,
}

/// Run the simulation (deterministic for a given seed).
pub fn run_protocol_sim(cfg: &SimConfig, seed: u64) -> SimOutput {
    let mut rng = StdRng::seed_from_u64(seed);
    let net = RoadNetwork::synthetic_city(&cfg.city, &mut rng);
    let (min_b, max_b) = net.bounds();
    let area = Rect::new(min_b, max_b);
    let buildings =
        BuildingIndex::generate(area, cfg.city.block_m, &cfg.environment.buildings, &mut rng);
    let channel = Channel::default();
    let mobility = MobilityConfig {
        vehicles: cfg.vehicles,
        speed: cfg.speed,
        idm: Default::default(),
    };
    let mut traffic = TrafficSim::new(&net, mobility, &mut rng);
    let router = Router::new(&net);
    let guard_cfg = GuardConfig {
        alpha: cfg.alpha,
        ..GuardConfig::default()
    };

    let n = cfg.vehicles;
    let mut builders: Vec<VpBuilder> = {
        let pos = traffic.positions();
        (0..n)
            .map(|i| VpBuilder::new(&mut rng, 0, pos[i].into(), VpKind::Actual))
            .collect()
    };
    let mut channel_up = AnonymousChannel::new();
    let mut minutes: Vec<MinuteRecord> = Vec::with_capacity(cfg.minutes as usize);

    // Per-pair per-minute channel state.
    let mut pair_state: HashMap<(usize, usize), PairMinute> = HashMap::new();
    // Contact bookkeeping: per pair, current run length of LOS-in-range.
    let mut contact_run: HashMap<(usize, usize), u32> = HashMap::new();
    let mut contact_total = 0u64;
    let mut contact_count = 0u64;
    let mut actual_total = 0usize;
    let mut guard_total = 0usize;

    let max_range = channel.params.max_range_m;
    for minute in 0..cfg.minutes {
        pair_state.clear();
        for sec in 0..60u64 {
            let t_now = minute * 60 + sec + 1;
            traffic.step(&mut rng);
            let pos = traffic.positions();
            // Record + broadcast.
            let mut vds = Vec::with_capacity(n);
            for i in 0..n {
                let chunk = synth_chunk(seed, i, t_now, cfg.chunk_bytes);
                vds.push(builders[i].record_second(&chunk, pos[i].into()));
            }
            // Pairwise delivery within radio range.
            let grid =
                vm_geo::GridIndex::build(max_range, pos.iter().enumerate().map(|(i, p)| (i, *p)));
            let mut in_contact: Vec<(usize, usize)> = Vec::new();
            for i in 0..n {
                for j in grid.query_radius(&pos[i], max_range) {
                    if j <= i {
                        continue;
                    }
                    let d = pos[i].distance(&pos[j]);
                    let los = buildings.line_of_sight(&pos[i], &pos[j]);
                    let key = (i, j);
                    let st = *pair_state.entry(key).or_insert_with(|| PairMinute {
                        veh_blocked: cfg.environment.traffic_blockage > 0.0
                            && rng.gen_bool(cfg.environment.traffic_blockage),
                        slow_los: channel.sample_slow_shadow(&mut rng, Blockage::Los),
                        slow_nlos: channel.sample_slow_shadow(&mut rng, Blockage::Building),
                    });
                    let (blockage, slow) = if !los {
                        (Blockage::Building, st.slow_nlos)
                    } else if st.veh_blocked {
                        (Blockage::Vehicle, st.slow_nlos)
                    } else {
                        (Blockage::Los, st.slow_los)
                    };
                    if channel
                        .try_deliver_with_shadow(&mut rng, d, blockage, slow)
                        .is_some()
                    {
                        let vd = vds[j];
                        builders[i].accept_neighbor_vd(vd, t_now, pos[i].into());
                    }
                    if channel
                        .try_deliver_with_shadow(&mut rng, d, blockage, slow)
                        .is_some()
                    {
                        let vd = vds[i];
                        builders[j].accept_neighbor_vd(vd, t_now, pos[j].into());
                    }
                    if los {
                        in_contact.push(key);
                    }
                }
            }
            // Contact durations: extend runs for pairs in LOS contact,
            // close runs for pairs that dropped out.
            let mut still: HashMap<(usize, usize), u32> = HashMap::with_capacity(in_contact.len());
            for key in in_contact {
                let run = contact_run.remove(&key).unwrap_or(0) + 1;
                still.insert(key, run);
            }
            for (_, run) in contact_run.drain() {
                contact_total += run as u64;
                contact_count += 1;
            }
            contact_run = still;
        }

        // Minute boundary: finalize, fabricate guards, upload.
        let pos = traffic.positions();
        let mut tracker = MinuteVps::default();
        let mut actual_idx = vec![0usize; n];
        let mut minute_vps: Vec<StoredVp> = Vec::new();
        let mut guard_count = 0usize;
        let mut neighbor_sum = 0usize;
        for i in 0..n {
            let next_builder =
                VpBuilder::new(&mut rng, (minute + 1) * 60, pos[i].into(), VpKind::Actual);
            let builder = std::mem::replace(&mut builders[i], next_builder);
            neighbor_sum += builder.neighbor_count();
            let mut fin = builder.finalize();
            let guards = if cfg.alpha > 0.0 {
                create_guards(&mut rng, &mut fin, &router, &guard_cfg)
            } else {
                Vec::new()
            };
            actual_idx[i] = tracker.starts.len();
            push_vp(&mut tracker, &fin.profile);
            if cfg.keep_vps {
                minute_vps.push(fin.profile.clone().into_stored());
            }
            channel_up.enqueue(fin.profile);
            actual_total += 1;
            for g in guards {
                push_vp(&mut tracker, &g);
                if cfg.keep_vps {
                    minute_vps.push(g.clone().into_stored());
                }
                channel_up.enqueue(g);
                guard_count += 1;
                guard_total += 1;
            }
        }
        // The anonymity channel shuffles per batch; experiments index VPs
        // through `tracker`/`actual_idx`, so we just drain it here.
        let _ = channel_up.flush(&mut rng);
        minutes.push(MinuteRecord {
            tracker,
            actual_idx,
            vps: cfg.keep_vps.then_some(minute_vps),
            guard_count,
            mean_neighbors: neighbor_sum as f64 / n as f64,
        });
    }
    // Close any contacts still open.
    for (_, run) in contact_run.drain() {
        contact_total += run as u64;
        contact_count += 1;
    }

    SimOutput {
        minutes,
        avg_contact_s: if contact_count > 0 {
            contact_total as f64 / contact_count as f64
        } else {
            0.0
        },
        actual_vps: actual_total,
        guard_vps: guard_total,
    }
}

/// Per-pair channel state held for one minute (slow fading: obstruction
/// geometry barely changes within a VP window).
#[derive(Clone, Copy, Debug)]
struct PairMinute {
    veh_blocked: bool,
    slow_los: f64,
    slow_nlos: f64,
}

fn push_vp(tracker: &mut MinuteVps, vp: &viewmap_core::vp::ViewProfile) {
    let start = vp.vds.first().expect("vds").loc;
    let end = vp.vds.last().expect("vds").loc;
    tracker.starts.push(start);
    tracker.ends.push(end);
}

/// Deterministic synthetic video chunk for vehicle `i` at time `t`.
fn synth_chunk(seed: u64, vehicle: usize, t: u64, len: usize) -> Vec<u8> {
    let mut state = seed
        .wrapping_mul(0x9e3779b97f4a7c15)
        .wrapping_add(vehicle as u64)
        .wrapping_mul(0xbf58476d1ce4e5b9)
        .wrapping_add(t);
    (0..len)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state as u8
        })
        .collect()
}

/// Derived statistics helpers over a [`SimOutput`].
impl SimOutput {
    /// Guard-VP share of all uploads.
    pub fn guard_share(&self) -> f64 {
        let total = self.actual_vps + self.guard_vps;
        if total == 0 {
            0.0
        } else {
            self.guard_vps as f64 / total as f64
        }
    }

    /// Mean VPs uploaded per minute (actual + guard).
    pub fn vps_per_minute(&self) -> f64 {
        if self.minutes.is_empty() {
            return 0.0;
        }
        self.minutes
            .iter()
            .map(|m| m.tracker.len() as f64)
            .sum::<f64>()
            / self.minutes.len() as f64
    }

    /// Ground-truth GeoPos chain of one vehicle's actual VP starts.
    pub fn vehicle_chain(&self, vehicle: usize) -> Vec<GeoPos> {
        self.minutes
            .iter()
            .map(|m| m.tracker.starts[m.actual_idx[vehicle]])
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_cfg() -> SimConfig {
        SimConfig {
            vehicles: 12,
            minutes: 2,
            speed: SpeedScenario::Fixed(50.0),
            alpha: 0.1,
            environment: Environment::residential(),
            city: CityParams {
                width_m: 1200.0,
                height_m: 1200.0,
                block_m: 200.0,
                jitter: 0.15,
                keep_link_prob: 0.95,
                diagonals: 1,
            },
            keep_vps: true,
            chunk_bytes: 16,
        }
    }

    #[test]
    fn produces_one_actual_vp_per_vehicle_per_minute() {
        let out = run_protocol_sim(&tiny_cfg(), 1);
        assert_eq!(out.minutes.len(), 2);
        assert_eq!(out.actual_vps, 24);
        for m in &out.minutes {
            assert_eq!(m.actual_idx.len(), 12);
            assert_eq!(m.tracker.len(), 12 + m.guard_count);
            let vps = m.vps.as_ref().expect("keep_vps");
            assert_eq!(vps.len(), m.tracker.len());
            for vp in vps {
                assert_eq!(vp.vds.len(), 60);
            }
        }
    }

    #[test]
    fn deterministic_for_same_seed() {
        let a = run_protocol_sim(&tiny_cfg(), 7);
        let b = run_protocol_sim(&tiny_cfg(), 7);
        assert_eq!(a.actual_vps, b.actual_vps);
        assert_eq!(a.guard_vps, b.guard_vps);
        assert_eq!(a.avg_contact_s, b.avg_contact_s);
        for (ma, mb) in a.minutes.iter().zip(&b.minutes) {
            assert_eq!(ma.tracker.starts.len(), mb.tracker.starts.len());
            for (sa, sb) in ma.tracker.starts.iter().zip(&mb.tracker.starts) {
                assert_eq!(sa, sb);
            }
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = run_protocol_sim(&tiny_cfg(), 1);
        let b = run_protocol_sim(&tiny_cfg(), 2);
        let sa: Vec<_> = a.minutes[0].tracker.starts.clone();
        let sb: Vec<_> = b.minutes[0].tracker.starts.clone();
        assert!(sa.iter().zip(&sb).any(|(x, y)| x != y));
    }

    #[test]
    fn guards_appear_when_vehicles_meet() {
        let out = run_protocol_sim(&tiny_cfg(), 3);
        // 12 vehicles in 1.2 km² will meet; α=0.1 → at least one guard.
        assert!(out.guard_vps > 0, "no guards produced");
        assert!(out.guard_share() > 0.0 && out.guard_share() < 0.9);
    }

    #[test]
    fn alpha_zero_produces_no_guards() {
        let cfg = SimConfig {
            alpha: 0.0,
            ..tiny_cfg()
        };
        let out = run_protocol_sim(&cfg, 4);
        assert_eq!(out.guard_vps, 0);
        for m in &out.minutes {
            assert_eq!(m.guard_count, 0);
            assert_eq!(m.tracker.len(), cfg.vehicles);
        }
    }

    #[test]
    fn vehicle_chain_is_continuous() {
        let out = run_protocol_sim(&tiny_cfg(), 5);
        // Consecutive actual VPs of a vehicle start near where the
        // previous minute ended (continuous driving).
        for v in 0..3 {
            for w in out.minutes.windows(2) {
                let prev_end = w[0].tracker.ends[w[0].actual_idx[v]];
                let next_start = w[1].tracker.starts[w[1].actual_idx[v]];
                let gap = prev_end.distance(&next_start);
                assert!(gap < 25.0, "vehicle {v} teleported {gap} m");
            }
        }
    }

    #[test]
    fn contact_time_is_positive_and_bounded() {
        let out = run_protocol_sim(&tiny_cfg(), 6);
        assert!(out.avg_contact_s > 0.0);
        assert!(out.avg_contact_s < 120.0, "contact {}", out.avg_contact_s);
    }

    #[test]
    fn stored_vps_link_when_exchanged() {
        let out = run_protocol_sim(&tiny_cfg(), 8);
        let vps = out.minutes[0].vps.as_ref().unwrap();
        // There should exist at least one mutually linked pair among the
        // actual VPs (dense tiny world).
        let n = out.minutes[0].actual_idx.len();
        let mut linked = 0;
        for i in 0..n {
            for j in (i + 1)..n {
                let a = &vps[out.minutes[0].actual_idx[i]];
                let b = &vps[out.minutes[0].actual_idx[j]];
                if a.mutually_linked(b) {
                    linked += 1;
                }
            }
        }
        assert!(linked > 0, "no linked VP pairs in a dense scenario");
    }
}
