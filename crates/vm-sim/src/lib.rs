//! Integrated ViewMap protocol simulation — the ns-3 substitute.
//!
//! Glues the substrates together into the experiment pipeline the paper's
//! evaluation runs on:
//!
//! * [`vm_mobility`] drives vehicles over a [`vm_geo`] road network,
//! * [`vm_radio`] decides which per-second VD broadcasts are delivered,
//! * [`viewmap_core`] builds VPs, guard VPs, and the server-side datasets.
//!
//! [`protocol`] is the full per-second simulation (Sections 6.2.2 and 8);
//! [`linkage`] runs the controlled two-vehicle experiments of Section 7
//! (Figs. 15–17, 20, Table 2); [`privacy`] evaluates the tracking
//! adversary on simulation output (Figs. 10/11/22a/22b).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod linkage;
pub mod privacy;
pub mod protocol;

pub use linkage::{vlr_experiment, LinkageSample};
pub use privacy::{privacy_curves, PrivacyCurves};
pub use protocol::{run_protocol_sim, MinuteRecord, SimConfig, SimOutput};
