//! Controlled two-vehicle linkage experiments (Section 7.2).
//!
//! Reproduces the paper's field measurements: the VP linkage ratio (VLR)
//! as a function of separation distance in different environments
//! (Fig. 15), speed/traffic conditions (Fig. 17), the RSSI/PDR scatter
//! (Fig. 16), and the Pearson correlation between VP linkage and video
//! visibility (Fig. 20). Two vehicles hold a fixed separation for one
//! minute; the geometric LOS answer comes from a generated building field
//! for the environment.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use vm_geo::{BuildingIndex, Point, Rect};
use vm_radio::{Blockage, CameraModel, Channel, Environment};

/// One measured (distance-bucket) sample.
#[derive(Clone, Copy, Debug)]
pub struct LinkageSample {
    /// Separation distance, meters.
    pub distance_m: f64,
    /// VP linkage ratio across trials.
    pub vlr: f64,
    /// Fraction of trials where the other vehicle appeared on video.
    pub on_video: f64,
    /// Pearson correlation between the linkage and visibility indicators.
    pub correlation: f64,
}

/// Run `trials` one-minute encounters at a fixed separation in an
/// environment and measure VLR / visibility / correlation.
pub fn vlr_experiment(
    env: &Environment,
    distance_m: f64,
    trials: usize,
    seed: u64,
) -> LinkageSample {
    let mut rng = StdRng::seed_from_u64(seed);
    let channel = Channel::default();
    let camera = CameraModel::default();
    // A building field large enough to embed the pair anywhere.
    let field = 2_000.0;
    let area = Rect::new(Point::new(0.0, 0.0), Point::new(field, field));
    let buildings = BuildingIndex::generate(area, 160.0, &env.buildings, &mut rng);

    let mut linked_v = Vec::with_capacity(trials);
    let mut visible_v = Vec::with_capacity(trials);
    for _ in 0..trials {
        // Random placement of the pair at the given separation.
        let margin = distance_m + 10.0;
        let ax = rng.gen_range(margin..field - margin);
        let ay = rng.gen_range(margin..field - margin);
        let th = rng.gen_range(0.0..std::f64::consts::TAU);
        let a = Point::new(ax, ay);
        let b = Point::new(ax + distance_m * th.cos(), ay + distance_m * th.sin());
        let geo_los = buildings.line_of_sight(&a, &b);
        let blockage = env.blockage(geo_los, &mut rng);
        let slow = channel.sample_slow_shadow(&mut rng, blockage);
        let mut a_rx = false;
        let mut b_rx = false;
        for _ in 0..60 {
            if channel
                .try_deliver_with_shadow(&mut rng, distance_m, blockage, slow)
                .is_some()
            {
                a_rx = true;
            }
            if channel
                .try_deliver_with_shadow(&mut rng, distance_m, blockage, slow)
                .is_some()
            {
                b_rx = true;
            }
            if a_rx && b_rx {
                break;
            }
        }
        let linked = a_rx && b_rx;
        let visible = camera.visible(&mut rng, distance_m, blockage == Blockage::Los);
        linked_v.push(linked);
        visible_v.push(visible);
    }
    let vlr = frac(&linked_v);
    let on_video = frac(&visible_v);
    LinkageSample {
        distance_m,
        vlr,
        on_video,
        correlation: pearson(&linked_v, &visible_v),
    }
}

/// RSSI vs PDR scatter point (Fig. 16): run one batch of beacons at a
/// distance/blockage and report (mean RSSI of delivered+attempted, PDR).
pub fn rssi_pdr_point(
    channel: &Channel,
    distance_m: f64,
    blockage: Blockage,
    beacons: usize,
    seed: u64,
) -> (f64, f64) {
    let mut rng = StdRng::seed_from_u64(seed);
    let slow = channel.sample_slow_shadow(&mut rng, blockage);
    let mut rssi_sum = 0.0;
    let mut delivered = 0usize;
    for _ in 0..beacons {
        let rssi = channel.sample_rssi_with_shadow(&mut rng, distance_m, blockage, slow);
        rssi_sum += rssi;
        if rng.gen_bool(channel.pdr(rssi).clamp(0.0, 1.0)) {
            delivered += 1;
        }
    }
    (rssi_sum / beacons as f64, delivered as f64 / beacons as f64)
}

fn frac(v: &[bool]) -> f64 {
    if v.is_empty() {
        return 0.0;
    }
    v.iter().filter(|&&b| b).count() as f64 / v.len() as f64
}

/// Pearson correlation coefficient between two boolean indicator series
/// (the paper's Fig. 20 statistic). Returns 0 when either series is
/// constant.
pub fn pearson(a: &[bool], b: &[bool]) -> f64 {
    assert_eq!(a.len(), b.len());
    let n = a.len() as f64;
    if n == 0.0 {
        return 0.0;
    }
    let xf = |x: bool| if x { 1.0 } else { 0.0 };
    let mean_a = a.iter().map(|&x| xf(x)).sum::<f64>() / n;
    let mean_b = b.iter().map(|&x| xf(x)).sum::<f64>() / n;
    let mut cov = 0.0;
    let mut var_a = 0.0;
    let mut var_b = 0.0;
    for (&x, &y) in a.iter().zip(b) {
        let dx = xf(x) - mean_a;
        let dy = xf(y) - mean_b;
        cov += dx * dy;
        var_a += dx * dx;
        var_b += dy * dy;
    }
    if var_a <= 0.0 || var_b <= 0.0 {
        return 0.0;
    }
    cov / (var_a.sqrt() * var_b.sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn open_road_vlr_high_out_to_400m() {
        for d in [100.0, 250.0, 400.0] {
            let s = vlr_experiment(&Environment::open_road(), d, 300, 1);
            assert!(s.vlr > 0.97, "open road VLR at {d} m: {}", s.vlr);
        }
    }

    #[test]
    fn downtown_vlr_decays_with_distance() {
        let near = vlr_experiment(&Environment::downtown(), 50.0, 300, 2);
        let far = vlr_experiment(&Environment::downtown(), 350.0, 300, 3);
        assert!(
            near.vlr > far.vlr + 0.15,
            "downtown: near {} vs far {}",
            near.vlr,
            far.vlr
        );
    }

    #[test]
    fn environments_ordered_by_density() {
        let d = 250.0;
        let open = vlr_experiment(&Environment::open_road(), d, 300, 4).vlr;
        let res = vlr_experiment(&Environment::residential(), d, 300, 5).vlr;
        let down = vlr_experiment(&Environment::downtown(), d, 300, 6).vlr;
        assert!(open > res, "open {open} vs residential {res}");
        assert!(res > down, "residential {res} vs downtown {down}");
    }

    #[test]
    fn heavy_traffic_reduces_vlr() {
        let d = 300.0;
        let light = vlr_experiment(&Environment::highway_light(), d, 400, 7).vlr;
        let heavy = vlr_experiment(&Environment::highway_heavy(), d, 400, 8).vlr;
        assert!(
            light > heavy + 0.15,
            "light {light} should beat heavy {heavy}"
        );
    }

    #[test]
    fn correlation_is_strong_where_both_vary() {
        // Fig. 20: correlation 0.7–0.9 in mixed environments.
        let s = vlr_experiment(&Environment::downtown(), 150.0, 600, 9);
        assert!(
            s.correlation > 0.55,
            "correlation at 150 m downtown: {}",
            s.correlation
        );
    }

    #[test]
    fn on_video_never_exceeds_vlr_much() {
        for d in [100.0, 200.0, 300.0] {
            let s = vlr_experiment(&Environment::residential(), d, 400, 10);
            assert!(
                s.on_video <= s.vlr + 0.1,
                "at {d}: video {} vs vlr {}",
                s.on_video,
                s.vlr
            );
        }
    }

    #[test]
    fn rssi_pdr_shape() {
        let ch = Channel::default();
        let (rssi_near, pdr_near) = rssi_pdr_point(&ch, 50.0, Blockage::Los, 200, 11);
        let (rssi_far, pdr_far) = rssi_pdr_point(&ch, 390.0, Blockage::Building, 200, 12);
        assert!(rssi_near > -80.0 && pdr_near > 0.95);
        assert!(rssi_far < -100.0 && pdr_far < 0.05);
    }

    #[test]
    fn pearson_basics() {
        let a = [true, true, false, false];
        assert!((pearson(&a, &a) - 1.0).abs() < 1e-12);
        let b = [false, false, true, true];
        assert!((pearson(&a, &b) + 1.0).abs() < 1e-12);
        let c = [true, true, true, true];
        assert_eq!(pearson(&a, &c), 0.0);
    }
}
