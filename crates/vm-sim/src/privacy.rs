//! Privacy evaluation: running the tracking adversary over simulation
//! output (Figs. 10, 11, 22a, 22b).
//!
//! For each tracked target the adversary locks on with perfect knowledge
//! at minute 0 and propagates beliefs across minutes over the anonymized
//! VP database (actual + guard VPs look identical). We report the average
//! location entropy `H_t` and tracking success ratio `S_t` over targets.

use crate::protocol::SimOutput;
use viewmap_core::tracker::{Tracker, TrackerParams};

/// Entropy / success curves over time.
#[derive(Clone, Debug)]
pub struct PrivacyCurves {
    /// Minute indices (1-based offsets from lock-on).
    pub minutes: Vec<u64>,
    /// Mean location entropy in bits at each minute.
    pub entropy_bits: Vec<f64>,
    /// Mean tracking success ratio at each minute.
    pub success: Vec<f64>,
}

/// Track `targets` vehicles through the simulated VP database.
pub fn privacy_curves(out: &SimOutput, targets: usize, params: TrackerParams) -> PrivacyCurves {
    assert!(!out.minutes.is_empty(), "empty simulation output");
    let n_vehicles = out.minutes[0].actual_idx.len();
    let targets = targets.min(n_vehicles);
    let horizon = out.minutes.len() - 1;
    let mut entropy_acc = vec![0.0; horizon];
    let mut success_acc = vec![0.0; horizon];
    for v in 0..targets {
        let mut tracker = Tracker::lock_on(
            params,
            &out.minutes[0].tracker,
            out.minutes[0].actual_idx[v],
        );
        for (k, minute) in out.minutes.iter().enumerate().skip(1) {
            tracker.advance(&minute.tracker);
            entropy_acc[k - 1] += tracker.entropy_bits();
            success_acc[k - 1] += tracker.success(minute.actual_idx[v]);
        }
    }
    let t = targets as f64;
    PrivacyCurves {
        minutes: (1..=horizon as u64).collect(),
        entropy_bits: entropy_acc.into_iter().map(|e| e / t).collect(),
        success: success_acc.into_iter().map(|s| s / t).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::{run_protocol_sim, SimConfig};
    use vm_geo::CityParams;
    use vm_mobility::SpeedScenario;
    use vm_radio::Environment;

    fn cfg(alpha: f64) -> SimConfig {
        SimConfig {
            vehicles: 25,
            minutes: 6,
            speed: SpeedScenario::Mix,
            alpha,
            environment: Environment::residential(),
            city: CityParams {
                width_m: 1500.0,
                height_m: 1500.0,
                block_m: 200.0,
                jitter: 0.15,
                keep_link_prob: 0.95,
                diagonals: 1,
            },
            keep_vps: false,
            chunk_bytes: 16,
        }
    }

    #[test]
    fn guards_reduce_tracking_success() {
        let with_guards = run_protocol_sim(&cfg(0.3), 42);
        let without = run_protocol_sim(&cfg(0.0), 42);
        let pc_g = privacy_curves(&with_guards, 10, TrackerParams::default());
        let pc_n = privacy_curves(&without, 10, TrackerParams::default());
        let last = pc_g.success.len() - 1;
        assert!(
            pc_g.success[last] < pc_n.success[last],
            "guards {} vs none {}",
            pc_g.success[last],
            pc_n.success[last]
        );
        // Without guards in a modest-density world the tracker stays
        // fairly confident.
        assert!(
            pc_n.success[last] > 0.5,
            "no-guard success {}",
            pc_n.success[last]
        );
    }

    #[test]
    fn entropy_grows_over_time_with_guards() {
        let out = run_protocol_sim(&cfg(0.3), 43);
        let pc = privacy_curves(&out, 10, TrackerParams::default());
        let first = pc.entropy_bits[0];
        let last = *pc.entropy_bits.last().unwrap();
        assert!(
            last >= first,
            "entropy should not shrink: {first} -> {last}"
        );
        assert!(last > 0.2, "final entropy too small: {last}");
    }

    #[test]
    fn success_is_a_probability() {
        let out = run_protocol_sim(&cfg(0.2), 44);
        let pc = privacy_curves(&out, 12, TrackerParams::default());
        for (&s, &e) in pc.success.iter().zip(&pc.entropy_bits) {
            assert!((0.0..=1.0 + 1e-9).contains(&s));
            assert!(e >= -1e-9);
        }
        assert_eq!(pc.minutes.len(), pc.success.len());
    }
}
