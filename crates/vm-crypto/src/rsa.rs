//! RSA and Chaum blind signatures for ViewMap's untraceable rewarding.
//!
//! Appendix A of the paper: the system `S` signs blinded messages
//! `B(H(m_u), r_u)` with its private key without learning `m_u`; the user
//! unblinds with the secret `r_u` to obtain a signature-message pair (one
//! unit of virtual cash). Anyone can verify authenticity against `S`'s
//! public key, and `S` keeps a double-spending ledger over `m_u` — but no
//! one can link the cash back to the video `u` or its owner.
//!
//! Messages are mapped into the RSA group with a full-domain hash (counter-
//! mode SHA-256 expansion reduced mod `n`).

use crate::bigint::BigUint;
use crate::sha256::Sha256;
use rand::Rng;

/// Public half of an RSA key: modulus `n` and exponent `e`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RsaPublicKey {
    n: BigUint,
    e: BigUint,
}

/// An RSA key pair (the system `S`'s signing key).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RsaKeyPair {
    public: RsaPublicKey,
    d: BigUint,
}

/// A blinded message: safe to send to the signer.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BlindedMessage(pub BigUint);

/// The blinding secret `r` — known only to the user; required to unblind.
#[derive(Clone, Debug)]
pub struct BlindingSecret {
    r_inv: BigUint,
}

/// An (unblinded) RSA signature over a full-domain-hashed message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Signature(pub BigUint);

/// Error cases for blind-signature operations.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RsaError {
    /// The value to be signed or verified is not within `[0, n)`.
    OutOfRange,
}

impl std::fmt::Display for RsaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RsaError::OutOfRange => write!(f, "value out of RSA modulus range"),
        }
    }
}

impl std::error::Error for RsaError {}

const PUBLIC_EXPONENT: u64 = 65537;

impl RsaKeyPair {
    /// Generate a key pair with a modulus of roughly `bits` bits.
    ///
    /// Tests use 512-bit keys for speed; the bench harness uses 1024.
    pub fn generate<R: Rng + ?Sized>(rng: &mut R, bits: usize) -> Self {
        assert!(bits >= 64, "modulus too small");
        let half = bits / 2;
        let e = BigUint::from_u64(PUBLIC_EXPONENT);
        loop {
            let p = BigUint::gen_prime(rng, half);
            let q = BigUint::gen_prime(rng, bits - half);
            if p == q {
                continue;
            }
            let n = p.mul(&q);
            let one = BigUint::one();
            let phi = p.sub(&one).mul(&q.sub(&one));
            if !phi.gcd(&e).is_one() {
                continue;
            }
            let d = e.modinv(&phi).expect("e coprime with phi");
            return RsaKeyPair {
                public: RsaPublicKey { n, e },
                d,
            };
        }
    }

    /// Reassemble a key pair from its public half and private exponent —
    /// the form it takes when loaded from an operator-supplied keyfile
    /// (vm-store's `signing.key`), so a restarted or promoted node keeps
    /// honoring cash minted before the restart.
    pub fn from_parts(public: RsaPublicKey, d: BigUint) -> Self {
        RsaKeyPair { public, d }
    }

    /// The public key.
    pub fn public(&self) -> &RsaPublicKey {
        &self.public
    }

    /// The private exponent `d`. Only key-persistence code should look at
    /// this; everything else signs through [`Self::sign_raw`].
    pub fn private_exponent(&self) -> &BigUint {
        &self.d
    }

    /// Raw RSA signing: `v^d mod n`. Used on *blinded* values, so the
    /// signer never sees the underlying message (Appendix A, step iii).
    pub fn sign_raw(&self, v: &BigUint) -> Result<Signature, RsaError> {
        if v >= &self.public.n {
            return Err(RsaError::OutOfRange);
        }
        Ok(Signature(v.modpow(&self.d, &self.public.n)))
    }

    /// Sign a blinded message (alias of [`Self::sign_raw`] with the
    /// domain-specific type).
    pub fn sign_blinded(&self, b: &BlindedMessage) -> Result<Signature, RsaError> {
        self.sign_raw(&b.0)
    }
}

impl RsaPublicKey {
    /// Reassemble a public key from its modulus and exponent — the form
    /// it travels in on the wire (vm-service's `PUBLIC_KEY` reply), so
    /// a remote client can verify cash and blind messages locally.
    pub fn from_parts(n: BigUint, e: BigUint) -> Self {
        RsaPublicKey { n, e }
    }

    /// Modulus.
    pub fn modulus(&self) -> &BigUint {
        &self.n
    }

    /// Public exponent.
    pub fn exponent(&self) -> &BigUint {
        &self.e
    }

    /// Full-domain hash of an arbitrary message into `[0, n)`.
    ///
    /// Counter-mode SHA-256: `H(0 || msg) || H(1 || msg) || ...` expanded to
    /// one byte more than the modulus, then reduced mod `n`.
    pub fn fdh(&self, msg: &[u8]) -> BigUint {
        let target_bytes = self.n.to_bytes_be().len() + 1;
        let mut out = Vec::with_capacity(target_bytes + 32);
        let mut counter = 0u32;
        while out.len() < target_bytes {
            let mut h = Sha256::new();
            h.update(&counter.to_be_bytes());
            h.update(msg);
            out.extend_from_slice(&h.finalize().0);
            counter += 1;
        }
        out.truncate(target_bytes);
        BigUint::from_bytes_be(&out).rem(&self.n)
    }

    /// Blind a full-domain-hashed message: returns `m * r^e mod n` together
    /// with the blinding secret (Appendix A, step ii).
    pub fn blind<R: Rng + ?Sized>(
        &self,
        hashed: &BigUint,
        rng: &mut R,
    ) -> Result<(BlindedMessage, BlindingSecret), RsaError> {
        if hashed >= &self.n {
            return Err(RsaError::OutOfRange);
        }
        loop {
            let r = BigUint::random_below(rng, &self.n);
            if r.is_zero() {
                continue;
            }
            let Some(r_inv) = r.modinv(&self.n) else {
                continue; // not coprime with n (astronomically unlikely)
            };
            let blinded = hashed.mulmod(&r.modpow(&self.e, &self.n), &self.n);
            return Ok((BlindedMessage(blinded), BlindingSecret { r_inv }));
        }
    }

    /// Unblind a signature over a blinded message (Appendix A, step iv):
    /// `U({B(H(m),r)}_{K_S^-}) = {H(m)}_{K_S^-}`.
    pub fn unblind(&self, signed: &Signature, secret: &BlindingSecret) -> Signature {
        Signature(signed.0.mulmod(&secret.r_inv, &self.n))
    }

    /// Verify a signature over a full-domain-hashed message.
    pub fn verify_hashed(&self, sig: &Signature, hashed: &BigUint) -> bool {
        if sig.0 >= self.n || hashed >= &self.n {
            return false;
        }
        sig.0.modpow(&self.e, &self.n) == *hashed
    }

    /// Verify a signature over a raw message (hashes it first).
    pub fn verify(&self, sig: &Signature, msg: &[u8]) -> bool {
        self.verify_hashed(sig, &self.fdh(msg))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn keypair(seed: u64) -> RsaKeyPair {
        let mut rng = StdRng::seed_from_u64(seed);
        RsaKeyPair::generate(&mut rng, 512)
    }

    #[test]
    fn sign_verify_roundtrip() {
        let kp = keypair(1);
        let msg = b"one unit of virtual cash";
        let hashed = kp.public().fdh(msg);
        let sig = kp.sign_raw(&hashed).unwrap();
        assert!(kp.public().verify(&sig, msg));
        assert!(!kp.public().verify(&sig, b"two units"));
    }

    #[test]
    fn blind_sign_unblind_verifies() {
        let mut rng = StdRng::seed_from_u64(2);
        let kp = keypair(2);
        let msg = b"blinded cash message m_u";
        let hashed = kp.public().fdh(msg);
        let (blinded, secret) = kp.public().blind(&hashed, &mut rng).unwrap();
        // Signer never sees `hashed`.
        assert_ne!(blinded.0, hashed);
        let signed_blinded = kp.sign_blinded(&blinded).unwrap();
        let sig = kp.public().unblind(&signed_blinded, &secret);
        assert!(kp.public().verify_hashed(&sig, &hashed));
    }

    #[test]
    fn unblinded_signature_equals_direct_signature() {
        // The unblinded signature is *identical* to a direct signature on
        // H(m) — this is exactly the unlinkability property: the signer
        // cannot tell which blinded request produced it.
        let mut rng = StdRng::seed_from_u64(3);
        let kp = keypair(3);
        let hashed = kp.public().fdh(b"m");
        let (blinded, secret) = kp.public().blind(&hashed, &mut rng).unwrap();
        let via_blind = kp
            .public()
            .unblind(&kp.sign_blinded(&blinded).unwrap(), &secret);
        let direct = kp.sign_raw(&hashed).unwrap();
        assert_eq!(via_blind, direct);
    }

    #[test]
    fn different_blindings_are_unlinkable() {
        let mut rng = StdRng::seed_from_u64(4);
        let kp = keypair(4);
        let hashed = kp.public().fdh(b"same message");
        let (b1, _) = kp.public().blind(&hashed, &mut rng).unwrap();
        let (b2, _) = kp.public().blind(&hashed, &mut rng).unwrap();
        assert_ne!(b1, b2, "same message must blind to different values");
    }

    #[test]
    fn tampered_signature_rejected() {
        let kp = keypair(5);
        let hashed = kp.public().fdh(b"msg");
        let sig = kp.sign_raw(&hashed).unwrap();
        let tampered = Signature(sig.0.add(&BigUint::one()).rem(kp.public().modulus()));
        assert!(!kp.public().verify_hashed(&tampered, &hashed));
    }

    #[test]
    fn wrong_key_rejected() {
        let kp1 = keypair(6);
        let kp2 = keypair(7);
        let hashed = kp1.public().fdh(b"msg");
        let sig = kp1.sign_raw(&hashed).unwrap();
        let hashed2 = kp2.public().fdh(b"msg");
        assert!(!kp2.public().verify_hashed(&sig, &hashed2));
    }

    #[test]
    fn out_of_range_errors() {
        let kp = keypair(8);
        let too_big = kp.public().modulus().clone();
        assert_eq!(kp.sign_raw(&too_big), Err(RsaError::OutOfRange));
        let mut rng = StdRng::seed_from_u64(8);
        assert!(kp.public().blind(&too_big, &mut rng).is_err());
    }

    #[test]
    fn keypair_round_trips_through_parts() {
        let kp = keypair(10);
        let rebuilt = RsaKeyPair::from_parts(kp.public().clone(), kp.private_exponent().clone());
        assert_eq!(rebuilt, kp);
        // The rebuilt pair signs identically, so cash minted by the
        // original remains redeemable against the rebuilt key.
        let hashed = kp.public().fdh(b"pre-restart cash");
        assert_eq!(
            rebuilt.sign_raw(&hashed).unwrap(),
            kp.sign_raw(&hashed).unwrap()
        );
    }

    #[test]
    fn fdh_is_deterministic_and_in_range() {
        let kp = keypair(9);
        let a = kp.public().fdh(b"hello");
        let b = kp.public().fdh(b"hello");
        assert_eq!(a, b);
        assert!(&a < kp.public().modulus());
        assert_ne!(kp.public().fdh(b"hello"), kp.public().fdh(b"hellp"));
    }
}
