//! SHA-256 (FIPS 180-4), implemented from scratch.
//!
//! Supports both one-shot hashing ([`sha256`]) and incremental hashing
//! ([`Sha256`]), which ViewMap's cascaded view-digest chain relies on: each
//! second only the newly recorded video chunk is fed into the hash, so the
//! per-second digest cost is constant regardless of total file size
//! (Section 6.1, Fig. 8 of the paper).
//!
//! # Hardware acceleration
//!
//! On x86-64 CPUs with the SHA extensions (`sha_ni`), the compression
//! function runs on `SHA256RNDS2`/`SHA256MSG1`/`SHA256MSG2` — roughly a
//! 5–7× throughput gain over the scalar rounds. The feature is detected at
//! runtime (first compression), so the same binary runs everywhere; the
//! scalar implementation is the reference and the fallback. Both paths
//! compute the identical FIPS function — the property tests drive random
//! state/block pairs through each and require bit-for-bit equal output —
//! so digests never depend on which path executed. This is the hot
//! primitive behind vehicle-side VD recording and the per-member Bloom-key
//! precomputation in viewmap construction.

/// A full 256-bit SHA-256 digest.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Digest32(pub [u8; 32]);

impl std::fmt::Debug for Digest32 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Digest32(")?;
        for b in &self.0 {
            write!(f, "{b:02x}")?;
        }
        write!(f, ")")
    }
}

impl Digest32 {
    /// Hex encoding of the digest (lowercase, 64 chars).
    pub fn to_hex(&self) -> String {
        let mut s = String::with_capacity(64);
        for b in &self.0 {
            s.push_str(&format!("{b:02x}"));
        }
        s
    }
}

const K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
];

const H0: [u32; 8] = [
    0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19,
];

/// Incremental SHA-256 hasher.
///
/// ```
/// use vm_crypto::sha256::{sha256, Sha256};
/// let mut h = Sha256::new();
/// h.update(b"hello ");
/// h.update(b"world");
/// assert_eq!(h.finalize(), sha256(b"hello world"));
/// ```
#[derive(Clone)]
pub struct Sha256 {
    state: [u32; 8],
    buf: [u8; 64],
    buf_len: usize,
    total_len: u64,
}

impl Default for Sha256 {
    fn default() -> Self {
        Self::new()
    }
}

impl Sha256 {
    /// Fresh hasher with the FIPS initial state.
    pub fn new() -> Self {
        Sha256 {
            state: H0,
            buf: [0u8; 64],
            buf_len: 0,
            total_len: 0,
        }
    }

    /// Absorb bytes.
    pub fn update(&mut self, mut data: &[u8]) {
        self.total_len = self.total_len.wrapping_add(data.len() as u64);
        if self.buf_len > 0 {
            let need = 64 - self.buf_len;
            let take = need.min(data.len());
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&data[..take]);
            self.buf_len += take;
            data = &data[take..];
            if self.buf_len == 64 {
                let block = self.buf;
                self.compress(&block);
                self.buf_len = 0;
            }
        }
        while data.len() >= 64 {
            let (block, rest) = data.split_at(64);
            let mut b = [0u8; 64];
            b.copy_from_slice(block);
            self.compress(&b);
            data = rest;
        }
        if !data.is_empty() {
            self.buf[..data.len()].copy_from_slice(data);
            self.buf_len = data.len();
        }
    }

    /// Finish hashing and return the digest. Consumes the hasher.
    ///
    /// The padding (0x80, zeros, 64-bit big-endian bit length) is
    /// assembled directly into the final block(s) — one compression when
    /// the residue leaves room for the length field, two otherwise —
    /// rather than fed through the buffer a byte at a time; `finalize` is
    /// on the per-VD path of Bloom-key precomputation.
    pub fn finalize(mut self) -> Digest32 {
        let bit_len = self.total_len.wrapping_mul(8);
        let mut block = [0u8; 64];
        block[..self.buf_len].copy_from_slice(&self.buf[..self.buf_len]);
        block[self.buf_len] = 0x80;
        if self.buf_len < 56 {
            block[56..].copy_from_slice(&bit_len.to_be_bytes());
            self.compress(&block);
        } else {
            self.compress(&block);
            let mut last = [0u8; 64];
            last[56..].copy_from_slice(&bit_len.to_be_bytes());
            self.compress(&last);
        }
        let mut out = [0u8; 32];
        for (i, w) in self.state.iter().enumerate() {
            out[4 * i..4 * i + 4].copy_from_slice(&w.to_be_bytes());
        }
        Digest32(out)
    }

    fn compress(&mut self, block: &[u8; 64]) {
        compress_dispatch(&mut self.state, block);
    }
}

/// The scalar (reference) compression function: one 64-byte block folded
/// into `state`.
fn compress_scalar(state: &mut [u32; 8], block: &[u8; 64]) {
    {
        let mut w = [0u32; 64];
        for i in 0..16 {
            w[i] = u32::from_be_bytes(block[4 * i..4 * i + 4].try_into().expect("4 bytes"));
        }
        for i in 16..64 {
            let s0 = w[i - 15].rotate_right(7) ^ w[i - 15].rotate_right(18) ^ (w[i - 15] >> 3);
            let s1 = w[i - 2].rotate_right(17) ^ w[i - 2].rotate_right(19) ^ (w[i - 2] >> 10);
            w[i] = w[i - 16]
                .wrapping_add(s0)
                .wrapping_add(w[i - 7])
                .wrapping_add(s1);
        }
        let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = *state;
        for i in 0..64 {
            let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
            let ch = (e & f) ^ ((!e) & g);
            let t1 = h
                .wrapping_add(s1)
                .wrapping_add(ch)
                .wrapping_add(K[i])
                .wrapping_add(w[i]);
            let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
            let maj = (a & b) ^ (a & c) ^ (b & c);
            let t2 = s0.wrapping_add(maj);
            h = g;
            g = f;
            f = e;
            e = d.wrapping_add(t1);
            d = c;
            c = b;
            b = a;
            a = t1.wrapping_add(t2);
        }
        state[0] = state[0].wrapping_add(a);
        state[1] = state[1].wrapping_add(b);
        state[2] = state[2].wrapping_add(c);
        state[3] = state[3].wrapping_add(d);
        state[4] = state[4].wrapping_add(e);
        state[5] = state[5].wrapping_add(f);
        state[6] = state[6].wrapping_add(g);
        state[7] = state[7].wrapping_add(h);
    }
}

/// The x86-64 SHA-extensions fast path.
///
/// This is the one corner of the workspace that uses `unsafe`: the SHA-NI
/// intrinsics have no safe wrapper in `core::arch`. The unsafety is
/// contained to exactly one function whose preconditions are (a) the CPU
/// supports `sha`/`ssse3`/`sse4.1` — enforced by the runtime detection
/// gate in [`compress`](self::shani::compress) — and (b) the pointer
/// arguments are valid, which the `&mut [u32; 8]` / `&[u8; 64]` references
/// guarantee. It computes the same FIPS 180-4 function as
/// [`compress_scalar`]; the test suite drives random state/block pairs
/// through both and requires identical output.
#[cfg(target_arch = "x86_64")]
mod shani {
    #![allow(unsafe_code)]

    use std::sync::atomic::{AtomicU8, Ordering};

    /// 0 = unprobed, 1 = unavailable, 2 = available.
    static AVAILABLE: AtomicU8 = AtomicU8::new(0);

    /// True iff the CPU has the SHA extensions (probed once, cached).
    pub fn available() -> bool {
        match AVAILABLE.load(Ordering::Relaxed) {
            2 => true,
            1 => false,
            _ => {
                let ok = std::arch::is_x86_feature_detected!("sha")
                    && std::arch::is_x86_feature_detected!("ssse3")
                    && std::arch::is_x86_feature_detected!("sse4.1");
                AVAILABLE.store(if ok { 2 } else { 1 }, Ordering::Relaxed);
                ok
            }
        }
    }

    /// Run one block through the hardware compression if the CPU supports
    /// it; returns false (without touching `state`) when it does not.
    #[inline]
    pub fn compress(state: &mut [u32; 8], block: &[u8; 64]) -> bool {
        if !available() {
            return false;
        }
        // SAFETY: the feature gate above proved sha/ssse3/sse4.1 support.
        unsafe { compress_ni(state, block) };
        true
    }

    #[target_feature(enable = "sha,ssse3,sse4.1")]
    unsafe fn compress_ni(state: &mut [u32; 8], block: &[u8; 64]) {
        use std::arch::x86_64::*;

        // Working-state layout for SHA256RNDS2: ABEF and CDGH quadwords.
        let tmp = _mm_loadu_si128(state.as_ptr() as *const __m128i);
        let state1_raw = _mm_loadu_si128(state.as_ptr().add(4) as *const __m128i);
        let tmp = _mm_shuffle_epi32(tmp, 0xB1); // CDAB
        let state1_raw = _mm_shuffle_epi32(state1_raw, 0x1B); // EFGH
        let mut state0 = _mm_alignr_epi8(tmp, state1_raw, 8); // ABEF
        let mut state1 = _mm_blend_epi16(state1_raw, tmp, 0xF0); // CDGH
        let abef_save = state0;
        let cdgh_save = state1;

        // Big-endian word loads.
        let mask = _mm_set_epi64x(0x0c0d_0e0f_0809_0a0bu64 as i64, 0x0405_0607_0001_0203);
        let p = block.as_ptr() as *const __m128i;
        let mut msg0 = _mm_shuffle_epi8(_mm_loadu_si128(p), mask);
        let mut msg1 = _mm_shuffle_epi8(_mm_loadu_si128(p.add(1)), mask);
        let mut msg2 = _mm_shuffle_epi8(_mm_loadu_si128(p.add(2)), mask);
        let mut msg3 = _mm_shuffle_epi8(_mm_loadu_si128(p.add(3)), mask);

        let k = |i: usize| {
            _mm_set_epi32(
                super::K[i + 3] as i32,
                super::K[i + 2] as i32,
                super::K[i + 1] as i32,
                super::K[i] as i32,
            )
        };
        // Two rounds per SHA256RNDS2: the low quadword of `msg` carries
        // w[t]+K[t], w[t+1]+K[t+1]; the swapped call consumes the high pair.
        macro_rules! quad {
            ($m:expr, $ki:expr) => {{
                let msg = _mm_add_epi32($m, k($ki));
                state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
                let msg_hi = _mm_shuffle_epi32(msg, 0x0E);
                state0 = _mm_sha256rnds2_epu32(state0, state1, msg_hi);
            }};
        }
        // Message schedule: `ext!` finishes extending `next` from the
        // just-consumed quadword `cur` — the cross-lane w[t-7] addend is
        // spliced in through ALIGNR, then SHA256MSG2 applies the σ1 part;
        // `m1!` starts the σ0 part for a quadword two steps ahead.
        macro_rules! ext {
            ($next:ident, $cur:ident, $prev:ident) => {{
                let tmp = _mm_alignr_epi8($cur, $prev, 4);
                $next = _mm_add_epi32($next, tmp);
                $next = _mm_sha256msg2_epu32($next, $cur);
            }};
        }
        macro_rules! m1 {
            ($x:ident, $y:ident) => {
                $x = _mm_sha256msg1_epu32($x, $y)
            };
        }

        quad!(msg0, 0);
        quad!(msg1, 4);
        m1!(msg0, msg1);
        quad!(msg2, 8);
        m1!(msg1, msg2);
        quad!(msg3, 12);
        ext!(msg0, msg3, msg2);
        m1!(msg2, msg3);
        quad!(msg0, 16);
        ext!(msg1, msg0, msg3);
        m1!(msg3, msg0);
        quad!(msg1, 20);
        ext!(msg2, msg1, msg0);
        m1!(msg0, msg1);
        quad!(msg2, 24);
        ext!(msg3, msg2, msg1);
        m1!(msg1, msg2);
        quad!(msg3, 28);
        ext!(msg0, msg3, msg2);
        m1!(msg2, msg3);
        quad!(msg0, 32);
        ext!(msg1, msg0, msg3);
        m1!(msg3, msg0);
        quad!(msg1, 36);
        ext!(msg2, msg1, msg0);
        m1!(msg0, msg1);
        quad!(msg2, 40);
        ext!(msg3, msg2, msg1);
        m1!(msg1, msg2);
        quad!(msg3, 44);
        ext!(msg0, msg3, msg2);
        m1!(msg2, msg3);
        quad!(msg0, 48);
        ext!(msg1, msg0, msg3);
        m1!(msg3, msg0);
        quad!(msg1, 52);
        ext!(msg2, msg1, msg0);
        quad!(msg2, 56);
        ext!(msg3, msg2, msg1);
        quad!(msg3, 60);

        state0 = _mm_add_epi32(state0, abef_save);
        state1 = _mm_add_epi32(state1, cdgh_save);

        // ABEF/CDGH back to row order a..h.
        let tmp = _mm_shuffle_epi32(state0, 0x1B); // FEBA
        let state1 = _mm_shuffle_epi32(state1, 0xB1); // DCHG
        let out0 = _mm_blend_epi16(tmp, state1, 0xF0); // DCBA
        let out1 = _mm_alignr_epi8(state1, tmp, 8); // HGFE
        _mm_storeu_si128(state.as_mut_ptr() as *mut __m128i, out0);
        _mm_storeu_si128(state.as_mut_ptr().add(4) as *mut __m128i, out1);
    }
}

/// One-shot SHA-256 of a byte slice.
///
/// Short inputs (≤ 119 bytes — at most two blocks once padded, which
/// covers every ViewMap wire structure: 72-byte VDs, 32-byte cash
/// messages, 8-byte secrets) skip the incremental hasher entirely: the
/// padded block(s) are assembled on the stack and compressed directly.
/// Longer inputs stream as before.
pub fn sha256(data: &[u8]) -> Digest32 {
    if data.len() < 120 {
        let mut state = H0;
        let mut blocks = [0u8; 128];
        blocks[..data.len()].copy_from_slice(data);
        blocks[data.len()] = 0x80;
        let two = data.len() >= 56;
        let end = if two { 128 } else { 64 };
        blocks[end - 8..end].copy_from_slice(&(data.len() as u64 * 8).to_be_bytes());
        let (first, second) = blocks.split_at(64);
        compress_dispatch(&mut state, first.try_into().expect("64-byte block"));
        if two {
            compress_dispatch(&mut state, second.try_into().expect("64-byte block"));
        }
        let mut out = [0u8; 32];
        for (i, w) in state.iter().enumerate() {
            out[4 * i..4 * i + 4].copy_from_slice(&w.to_be_bytes());
        }
        return Digest32(out);
    }
    let mut h = Sha256::new();
    h.update(data);
    h.finalize()
}

/// Hardware compression when available, scalar otherwise.
fn compress_dispatch(state: &mut [u32; 8], block: &[u8; 64]) {
    #[cfg(target_arch = "x86_64")]
    if shani::compress(state, block) {
        return;
    }
    compress_scalar(state, block);
}

#[cfg(test)]
mod tests {
    use super::*;

    // FIPS 180-4 / NIST CAVP known-answer vectors.
    const VECTORS: &[(&str, &str)] = &[
        (
            "",
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855",
        ),
        (
            "abc",
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad",
        ),
        (
            "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq",
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1",
        ),
        (
            "abcdefghbcdefghicdefghijdefghijkefghijklfghijklmghijklmnhijklmnoijklmnopjklmnopqklmnopqrlmnopqrsmnopqrstnopqrstu",
            "cf5b16a778af8380036ce59e7b0492370b249b11e8f07a51afac45037afee9d1",
        ),
    ];

    #[test]
    fn known_answer_vectors() {
        for (input, expected) in VECTORS {
            assert_eq!(
                &sha256(input.as_bytes()).to_hex(),
                expected,
                "input {input:?}"
            );
        }
    }

    #[test]
    fn million_a() {
        let data = vec![b'a'; 1_000_000];
        assert_eq!(
            sha256(&data).to_hex(),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
        );
    }

    #[test]
    fn incremental_matches_oneshot_at_all_split_points() {
        let data: Vec<u8> = (0..300u32).map(|i| (i * 7 % 251) as u8).collect();
        let expected = sha256(&data);
        for split in [0, 1, 55, 56, 63, 64, 65, 127, 128, 200, 300] {
            let mut h = Sha256::new();
            h.update(&data[..split]);
            h.update(&data[split..]);
            assert_eq!(h.finalize(), expected, "split at {split}");
        }
    }

    #[test]
    fn incremental_many_small_updates() {
        let data = b"the quick brown fox jumps over the lazy dog";
        let mut h = Sha256::new();
        for b in data {
            h.update(std::slice::from_ref(b));
        }
        assert_eq!(h.finalize(), sha256(data));
    }

    #[test]
    fn padding_boundary_lengths() {
        // Lengths around the 55/56/64 padding boundaries must all hash
        // consistently with a two-part incremental computation.
        for len in 50..70usize {
            let data = vec![0xa5u8; len];
            let one = sha256(&data);
            let mut h = Sha256::new();
            h.update(&data[..len / 2]);
            h.update(&data[len / 2..]);
            assert_eq!(h.finalize(), one, "len {len}");
        }
    }

    #[cfg(target_arch = "x86_64")]
    #[test]
    fn shani_compression_matches_scalar_on_random_blocks() {
        // Property: the hardware and scalar compression functions are the
        // same FIPS 180-4 map on random (state, block) pairs — not just on
        // structured hash inputs, where a schedule bug could hide behind
        // padding regularities.
        if !super::shani::available() {
            eprintln!("skipping: CPU lacks SHA extensions");
            return;
        }
        // Deterministic xorshift — no RNG dependency in this crate.
        let mut x = 0x243f_6a88_85a3_08d3u64;
        let mut next = move || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        };
        for case in 0..500 {
            let mut state = [0u32; 8];
            for w in state.iter_mut() {
                *w = next() as u32;
            }
            let mut block = [0u8; 64];
            for b in block.iter_mut() {
                *b = next() as u8;
            }
            let mut hw = state;
            assert!(super::shani::compress(&mut hw, &block));
            let mut sw = state;
            compress_scalar(&mut sw, &block);
            assert_eq!(hw, sw, "case {case}: SHA-NI diverged from scalar");
        }
    }

    #[test]
    fn clone_preserves_state() {
        let mut h = Sha256::new();
        h.update(b"prefix");
        let h2 = h.clone();
        h.update(b"-a");
        let mut h2 = h2;
        h2.update(b"-a");
        assert_eq!(h.finalize(), h2.finalize());
    }
}
