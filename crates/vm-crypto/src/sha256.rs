//! SHA-256 (FIPS 180-4), implemented from scratch.
//!
//! Supports both one-shot hashing ([`sha256`]) and incremental hashing
//! ([`Sha256`]), which ViewMap's cascaded view-digest chain relies on: each
//! second only the newly recorded video chunk is fed into the hash, so the
//! per-second digest cost is constant regardless of total file size
//! (Section 6.1, Fig. 8 of the paper).
//!
//! # Hardware acceleration
//!
//! On x86-64 CPUs with the SHA extensions (`sha_ni`), the compression
//! function runs on `SHA256RNDS2`/`SHA256MSG1`/`SHA256MSG2` — roughly a
//! 5–7× throughput gain over the scalar rounds. The feature is detected at
//! runtime (first compression), so the same binary runs everywhere; the
//! scalar implementation is the reference and the fallback. Both paths
//! compute the identical FIPS function — the property tests drive random
//! state/block pairs through each and require bit-for-bit equal output —
//! so digests never depend on which path executed. This is the hot
//! primitive behind vehicle-side VD recording and the per-member Bloom-key
//! precomputation in viewmap construction.
//!
//! # Multi-buffer hashing
//!
//! SHA-256 is a serial chain per message — each compression depends on
//! the previous one — so a single stream can never fill the execution
//! ports: the SHA-NI round instruction has multi-cycle latency, and the
//! scalar rounds serialize on the working variables. [`sha256_many`]
//! hashes *independent* messages in interleaved lanes instead: two blocks
//! per step on the SHA-NI path (hiding `SHA256RNDS2` latency behind the
//! sibling lane), four on the scalar path (the per-lane `u32` round ops
//! become 4-wide SIMD under autovectorization). Lanes are double-buffered:
//! the moment one message finishes its digest, the lane reloads with the
//! next message, so unequal lengths never drain the pipeline. Every lane
//! computes the same FIPS function as [`sha256`]; the property tests pin
//! `sha256_many` to the single-stream oracle across lane counts, unequal
//! message lengths, and the padding-boundary sizes.
//!
//! Setting the `VM_CRYPTO_DISABLE_SHANI` environment variable (any value)
//! before the first hash forces the scalar paths — CI uses it to keep the
//! scalar multi-buffer code covered on SHA-NI hosts.

/// A full 256-bit SHA-256 digest.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Digest32(pub [u8; 32]);

impl std::fmt::Debug for Digest32 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Digest32(")?;
        for b in &self.0 {
            write!(f, "{b:02x}")?;
        }
        write!(f, ")")
    }
}

impl Digest32 {
    /// Hex encoding of the digest (lowercase, 64 chars).
    pub fn to_hex(&self) -> String {
        let mut s = String::with_capacity(64);
        for b in &self.0 {
            s.push_str(&format!("{b:02x}"));
        }
        s
    }
}

const K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
];

const H0: [u32; 8] = [
    0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19,
];

/// Incremental SHA-256 hasher.
///
/// ```
/// use vm_crypto::sha256::{sha256, Sha256};
/// let mut h = Sha256::new();
/// h.update(b"hello ");
/// h.update(b"world");
/// assert_eq!(h.finalize(), sha256(b"hello world"));
/// ```
#[derive(Clone)]
pub struct Sha256 {
    state: [u32; 8],
    buf: [u8; 64],
    buf_len: usize,
    total_len: u64,
}

impl Default for Sha256 {
    fn default() -> Self {
        Self::new()
    }
}

impl Sha256 {
    /// Fresh hasher with the FIPS initial state.
    pub fn new() -> Self {
        Sha256 {
            state: H0,
            buf: [0u8; 64],
            buf_len: 0,
            total_len: 0,
        }
    }

    /// Absorb bytes.
    pub fn update(&mut self, mut data: &[u8]) {
        self.total_len = self.total_len.wrapping_add(data.len() as u64);
        if self.buf_len > 0 {
            let need = 64 - self.buf_len;
            let take = need.min(data.len());
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&data[..take]);
            self.buf_len += take;
            data = &data[take..];
            if self.buf_len == 64 {
                let block = self.buf;
                self.compress(&block);
                self.buf_len = 0;
            }
        }
        while data.len() >= 64 {
            let (block, rest) = data.split_at(64);
            let mut b = [0u8; 64];
            b.copy_from_slice(block);
            self.compress(&b);
            data = rest;
        }
        if !data.is_empty() {
            self.buf[..data.len()].copy_from_slice(data);
            self.buf_len = data.len();
        }
    }

    /// Finish hashing and return the digest. Consumes the hasher.
    ///
    /// The padding (0x80, zeros, 64-bit big-endian bit length) is
    /// assembled directly into the final block(s) — one compression when
    /// the residue leaves room for the length field, two otherwise —
    /// rather than fed through the buffer a byte at a time; `finalize` is
    /// on the per-VD path of Bloom-key precomputation.
    pub fn finalize(mut self) -> Digest32 {
        let bit_len = self.total_len.wrapping_mul(8);
        let mut block = [0u8; 64];
        block[..self.buf_len].copy_from_slice(&self.buf[..self.buf_len]);
        block[self.buf_len] = 0x80;
        if self.buf_len < 56 {
            block[56..].copy_from_slice(&bit_len.to_be_bytes());
            self.compress(&block);
        } else {
            self.compress(&block);
            let mut last = [0u8; 64];
            last[56..].copy_from_slice(&bit_len.to_be_bytes());
            self.compress(&last);
        }
        digest_from_state(&self.state)
    }

    fn compress(&mut self, block: &[u8; 64]) {
        compress_dispatch(&mut self.state, block);
    }
}

/// Big-endian serialization of a finished compression state.
fn digest_from_state(state: &[u32; 8]) -> Digest32 {
    let mut out = [0u8; 32];
    for (i, w) in state.iter().enumerate() {
        out[4 * i..4 * i + 4].copy_from_slice(&w.to_be_bytes());
    }
    Digest32(out)
}

/// The scalar (reference) compression function: one 64-byte block folded
/// into `state`.
fn compress_scalar(state: &mut [u32; 8], block: &[u8; 64]) {
    {
        let mut w = [0u32; 64];
        for i in 0..16 {
            w[i] = u32::from_be_bytes(block[4 * i..4 * i + 4].try_into().expect("4 bytes"));
        }
        for i in 16..64 {
            let s0 = w[i - 15].rotate_right(7) ^ w[i - 15].rotate_right(18) ^ (w[i - 15] >> 3);
            let s1 = w[i - 2].rotate_right(17) ^ w[i - 2].rotate_right(19) ^ (w[i - 2] >> 10);
            w[i] = w[i - 16]
                .wrapping_add(s0)
                .wrapping_add(w[i - 7])
                .wrapping_add(s1);
        }
        let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = *state;
        for i in 0..64 {
            let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
            let ch = (e & f) ^ ((!e) & g);
            let t1 = h
                .wrapping_add(s1)
                .wrapping_add(ch)
                .wrapping_add(K[i])
                .wrapping_add(w[i]);
            let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
            let maj = (a & b) ^ (a & c) ^ (b & c);
            let t2 = s0.wrapping_add(maj);
            h = g;
            g = f;
            f = e;
            e = d.wrapping_add(t1);
            d = c;
            c = b;
            b = a;
            a = t1.wrapping_add(t2);
        }
        state[0] = state[0].wrapping_add(a);
        state[1] = state[1].wrapping_add(b);
        state[2] = state[2].wrapping_add(c);
        state[3] = state[3].wrapping_add(d);
        state[4] = state[4].wrapping_add(e);
        state[5] = state[5].wrapping_add(f);
        state[6] = state[6].wrapping_add(g);
        state[7] = state[7].wrapping_add(h);
    }
}

/// The x86-64 SHA-extensions fast path.
///
/// This is the one corner of the workspace that uses `unsafe`: the SHA-NI
/// intrinsics have no safe wrapper in `core::arch`. The unsafety is
/// contained to exactly one function whose preconditions are (a) the CPU
/// supports `sha`/`ssse3`/`sse4.1` — enforced by the runtime detection
/// gate in [`compress`](self::shani::compress) — and (b) the pointer
/// arguments are valid, which the `&mut [u32; 8]` / `&[u8; 64]` references
/// guarantee. It computes the same FIPS 180-4 function as
/// [`compress_scalar`]; the test suite drives random state/block pairs
/// through both and requires identical output.
#[cfg(target_arch = "x86_64")]
mod shani {
    #![allow(unsafe_code)]

    use std::sync::atomic::{AtomicU8, Ordering};

    /// 0 = unprobed, 1 = unavailable, 2 = available.
    static AVAILABLE: AtomicU8 = AtomicU8::new(0);

    /// True iff the CPU has the SHA extensions (probed once, cached).
    ///
    /// The `VM_CRYPTO_DISABLE_SHANI` environment variable (any value,
    /// read at the first probe) forces `false`, so CI can exercise the
    /// scalar single- and multi-buffer paths on SHA-NI hardware.
    pub fn available() -> bool {
        match AVAILABLE.load(Ordering::Relaxed) {
            2 => true,
            1 => false,
            _ => {
                let ok = std::env::var_os("VM_CRYPTO_DISABLE_SHANI").is_none()
                    && std::arch::is_x86_feature_detected!("sha")
                    && std::arch::is_x86_feature_detected!("ssse3")
                    && std::arch::is_x86_feature_detected!("sse4.1");
                AVAILABLE.store(if ok { 2 } else { 1 }, Ordering::Relaxed);
                ok
            }
        }
    }

    /// Run one block through the hardware compression if the CPU supports
    /// it; returns false (without touching `state`) when it does not.
    #[inline]
    pub fn compress(state: &mut [u32; 8], block: &[u8; 64]) -> bool {
        if !available() {
            return false;
        }
        // SAFETY: the feature gate above proved sha/ssse3/sse4.1 support.
        unsafe { compress_ni(state, block) };
        true
    }

    #[target_feature(enable = "sha,ssse3,sse4.1")]
    unsafe fn compress_ni(state: &mut [u32; 8], block: &[u8; 64]) {
        use std::arch::x86_64::*;

        // Working-state layout for SHA256RNDS2: ABEF and CDGH quadwords.
        let tmp = _mm_loadu_si128(state.as_ptr() as *const __m128i);
        let state1_raw = _mm_loadu_si128(state.as_ptr().add(4) as *const __m128i);
        let tmp = _mm_shuffle_epi32(tmp, 0xB1); // CDAB
        let state1_raw = _mm_shuffle_epi32(state1_raw, 0x1B); // EFGH
        let mut state0 = _mm_alignr_epi8(tmp, state1_raw, 8); // ABEF
        let mut state1 = _mm_blend_epi16(state1_raw, tmp, 0xF0); // CDGH
        let abef_save = state0;
        let cdgh_save = state1;

        // Big-endian word loads.
        let mask = _mm_set_epi64x(0x0c0d_0e0f_0809_0a0bu64 as i64, 0x0405_0607_0001_0203);
        let p = block.as_ptr() as *const __m128i;
        let mut msg0 = _mm_shuffle_epi8(_mm_loadu_si128(p), mask);
        let mut msg1 = _mm_shuffle_epi8(_mm_loadu_si128(p.add(1)), mask);
        let mut msg2 = _mm_shuffle_epi8(_mm_loadu_si128(p.add(2)), mask);
        let mut msg3 = _mm_shuffle_epi8(_mm_loadu_si128(p.add(3)), mask);

        let k = |i: usize| {
            _mm_set_epi32(
                super::K[i + 3] as i32,
                super::K[i + 2] as i32,
                super::K[i + 1] as i32,
                super::K[i] as i32,
            )
        };
        // Two rounds per SHA256RNDS2: the low quadword of `msg` carries
        // w[t]+K[t], w[t+1]+K[t+1]; the swapped call consumes the high pair.
        macro_rules! quad {
            ($m:expr, $ki:expr) => {{
                let msg = _mm_add_epi32($m, k($ki));
                state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
                let msg_hi = _mm_shuffle_epi32(msg, 0x0E);
                state0 = _mm_sha256rnds2_epu32(state0, state1, msg_hi);
            }};
        }
        // Message schedule: `ext!` finishes extending `next` from the
        // just-consumed quadword `cur` — the cross-lane w[t-7] addend is
        // spliced in through ALIGNR, then SHA256MSG2 applies the σ1 part;
        // `m1!` starts the σ0 part for a quadword two steps ahead.
        macro_rules! ext {
            ($next:ident, $cur:ident, $prev:ident) => {{
                let tmp = _mm_alignr_epi8($cur, $prev, 4);
                $next = _mm_add_epi32($next, tmp);
                $next = _mm_sha256msg2_epu32($next, $cur);
            }};
        }
        macro_rules! m1 {
            ($x:ident, $y:ident) => {
                $x = _mm_sha256msg1_epu32($x, $y)
            };
        }

        quad!(msg0, 0);
        quad!(msg1, 4);
        m1!(msg0, msg1);
        quad!(msg2, 8);
        m1!(msg1, msg2);
        quad!(msg3, 12);
        ext!(msg0, msg3, msg2);
        m1!(msg2, msg3);
        quad!(msg0, 16);
        ext!(msg1, msg0, msg3);
        m1!(msg3, msg0);
        quad!(msg1, 20);
        ext!(msg2, msg1, msg0);
        m1!(msg0, msg1);
        quad!(msg2, 24);
        ext!(msg3, msg2, msg1);
        m1!(msg1, msg2);
        quad!(msg3, 28);
        ext!(msg0, msg3, msg2);
        m1!(msg2, msg3);
        quad!(msg0, 32);
        ext!(msg1, msg0, msg3);
        m1!(msg3, msg0);
        quad!(msg1, 36);
        ext!(msg2, msg1, msg0);
        m1!(msg0, msg1);
        quad!(msg2, 40);
        ext!(msg3, msg2, msg1);
        m1!(msg1, msg2);
        quad!(msg3, 44);
        ext!(msg0, msg3, msg2);
        m1!(msg2, msg3);
        quad!(msg0, 48);
        ext!(msg1, msg0, msg3);
        m1!(msg3, msg0);
        quad!(msg1, 52);
        ext!(msg2, msg1, msg0);
        quad!(msg2, 56);
        ext!(msg3, msg2, msg1);
        quad!(msg3, 60);

        state0 = _mm_add_epi32(state0, abef_save);
        state1 = _mm_add_epi32(state1, cdgh_save);

        // ABEF/CDGH back to row order a..h.
        let tmp = _mm_shuffle_epi32(state0, 0x1B); // FEBA
        let state1 = _mm_shuffle_epi32(state1, 0xB1); // DCHG
        let out0 = _mm_blend_epi16(tmp, state1, 0xF0); // DCBA
        let out1 = _mm_alignr_epi8(state1, tmp, 8); // HGFE
        _mm_storeu_si128(state.as_mut_ptr() as *mut __m128i, out0);
        _mm_storeu_si128(state.as_mut_ptr().add(4) as *mut __m128i, out1);
    }

    /// Two independent blocks through the hardware compression at once,
    /// if the CPU supports it; returns false (touching neither state)
    /// when it does not.
    ///
    /// `SHA256RNDS2` has multi-cycle latency but single-cycle-class
    /// throughput, and one message's rounds form a dependency chain — so
    /// a single stream leaves the SHA unit half idle. Interleaving two
    /// *independent* streams fills those latency bubbles; this is the
    /// kernel behind [`super::sha256_many`]'s double-buffered dispatch.
    #[inline]
    pub fn compress2(sa: &mut [u32; 8], ba: &[u8; 64], sb: &mut [u32; 8], bb: &[u8; 64]) -> bool {
        if !available() {
            return false;
        }
        // SAFETY: the feature gate above proved sha/ssse3/sse4.1 support.
        unsafe { compress_ni_x2(sa, ba, sb, bb) };
        true
    }

    /// The interleaved two-stream body: lane A and lane B run the exact
    /// round/schedule sequence of [`compress_ni`], instruction-pairwise
    /// interleaved. Same SAFETY argument as `compress_ni`: feature gate in
    /// [`compress2`], pointer validity from the references.
    #[target_feature(enable = "sha,ssse3,sse4.1")]
    unsafe fn compress_ni_x2(sa: &mut [u32; 8], ba: &[u8; 64], sb: &mut [u32; 8], bb: &[u8; 64]) {
        use std::arch::x86_64::*;

        // Working-state layout for SHA256RNDS2 (ABEF/CDGH), lane A.
        let t = _mm_loadu_si128(sa.as_ptr() as *const __m128i);
        let s1r = _mm_loadu_si128(sa.as_ptr().add(4) as *const __m128i);
        let t = _mm_shuffle_epi32(t, 0xB1);
        let s1r = _mm_shuffle_epi32(s1r, 0x1B);
        let mut a0 = _mm_alignr_epi8(t, s1r, 8);
        let mut a1 = _mm_blend_epi16(s1r, t, 0xF0);
        let (a0_save, a1_save) = (a0, a1);
        // Lane B.
        let t = _mm_loadu_si128(sb.as_ptr() as *const __m128i);
        let s1r = _mm_loadu_si128(sb.as_ptr().add(4) as *const __m128i);
        let t = _mm_shuffle_epi32(t, 0xB1);
        let s1r = _mm_shuffle_epi32(s1r, 0x1B);
        let mut b0 = _mm_alignr_epi8(t, s1r, 8);
        let mut b1 = _mm_blend_epi16(s1r, t, 0xF0);
        let (b0_save, b1_save) = (b0, b1);

        // Big-endian word loads for both message blocks.
        let mask = _mm_set_epi64x(0x0c0d_0e0f_0809_0a0bu64 as i64, 0x0405_0607_0001_0203);
        let pa = ba.as_ptr() as *const __m128i;
        let mut am0 = _mm_shuffle_epi8(_mm_loadu_si128(pa), mask);
        let mut am1 = _mm_shuffle_epi8(_mm_loadu_si128(pa.add(1)), mask);
        let mut am2 = _mm_shuffle_epi8(_mm_loadu_si128(pa.add(2)), mask);
        let mut am3 = _mm_shuffle_epi8(_mm_loadu_si128(pa.add(3)), mask);
        let pb = bb.as_ptr() as *const __m128i;
        let mut bm0 = _mm_shuffle_epi8(_mm_loadu_si128(pb), mask);
        let mut bm1 = _mm_shuffle_epi8(_mm_loadu_si128(pb.add(1)), mask);
        let mut bm2 = _mm_shuffle_epi8(_mm_loadu_si128(pb.add(2)), mask);
        let mut bm3 = _mm_shuffle_epi8(_mm_loadu_si128(pb.add(3)), mask);

        let k = |i: usize| {
            _mm_set_epi32(
                super::K[i + 3] as i32,
                super::K[i + 2] as i32,
                super::K[i + 1] as i32,
                super::K[i] as i32,
            )
        };
        // Four rounds on both lanes: the two chains are independent, so
        // lane B's SHA256RNDS2 issues into lane A's latency shadow.
        macro_rules! quad2 {
            ($ma:expr, $mb:expr, $ki:expr) => {{
                let kv = k($ki);
                let ma = _mm_add_epi32($ma, kv);
                let mb = _mm_add_epi32($mb, kv);
                a1 = _mm_sha256rnds2_epu32(a1, a0, ma);
                b1 = _mm_sha256rnds2_epu32(b1, b0, mb);
                let ma_hi = _mm_shuffle_epi32(ma, 0x0E);
                let mb_hi = _mm_shuffle_epi32(mb, 0x0E);
                a0 = _mm_sha256rnds2_epu32(a0, a1, ma_hi);
                b0 = _mm_sha256rnds2_epu32(b0, b1, mb_hi);
            }};
        }
        // Message-schedule extension, both lanes (see `ext!`/`m1!` in the
        // single-stream body for the schedule structure).
        macro_rules! ext2 {
            ($na:ident, $ca:ident, $pa:ident, $nb:ident, $cb:ident, $pb:ident) => {{
                let ta = _mm_alignr_epi8($ca, $pa, 4);
                $na = _mm_add_epi32($na, ta);
                $na = _mm_sha256msg2_epu32($na, $ca);
                let tb = _mm_alignr_epi8($cb, $pb, 4);
                $nb = _mm_add_epi32($nb, tb);
                $nb = _mm_sha256msg2_epu32($nb, $cb);
            }};
        }
        macro_rules! m1x2 {
            ($xa:ident, $ya:ident, $xb:ident, $yb:ident) => {{
                $xa = _mm_sha256msg1_epu32($xa, $ya);
                $xb = _mm_sha256msg1_epu32($xb, $yb);
            }};
        }

        quad2!(am0, bm0, 0);
        quad2!(am1, bm1, 4);
        m1x2!(am0, am1, bm0, bm1);
        quad2!(am2, bm2, 8);
        m1x2!(am1, am2, bm1, bm2);
        quad2!(am3, bm3, 12);
        ext2!(am0, am3, am2, bm0, bm3, bm2);
        m1x2!(am2, am3, bm2, bm3);
        quad2!(am0, bm0, 16);
        ext2!(am1, am0, am3, bm1, bm0, bm3);
        m1x2!(am3, am0, bm3, bm0);
        quad2!(am1, bm1, 20);
        ext2!(am2, am1, am0, bm2, bm1, bm0);
        m1x2!(am0, am1, bm0, bm1);
        quad2!(am2, bm2, 24);
        ext2!(am3, am2, am1, bm3, bm2, bm1);
        m1x2!(am1, am2, bm1, bm2);
        quad2!(am3, bm3, 28);
        ext2!(am0, am3, am2, bm0, bm3, bm2);
        m1x2!(am2, am3, bm2, bm3);
        quad2!(am0, bm0, 32);
        ext2!(am1, am0, am3, bm1, bm0, bm3);
        m1x2!(am3, am0, bm3, bm0);
        quad2!(am1, bm1, 36);
        ext2!(am2, am1, am0, bm2, bm1, bm0);
        m1x2!(am0, am1, bm0, bm1);
        quad2!(am2, bm2, 40);
        ext2!(am3, am2, am1, bm3, bm2, bm1);
        m1x2!(am1, am2, bm1, bm2);
        quad2!(am3, bm3, 44);
        ext2!(am0, am3, am2, bm0, bm3, bm2);
        m1x2!(am2, am3, bm2, bm3);
        quad2!(am0, bm0, 48);
        ext2!(am1, am0, am3, bm1, bm0, bm3);
        m1x2!(am3, am0, bm3, bm0);
        quad2!(am1, bm1, 52);
        ext2!(am2, am1, am0, bm2, bm1, bm0);
        quad2!(am2, bm2, 56);
        ext2!(am3, am2, am1, bm3, bm2, bm1);
        quad2!(am3, bm3, 60);

        a0 = _mm_add_epi32(a0, a0_save);
        a1 = _mm_add_epi32(a1, a1_save);
        b0 = _mm_add_epi32(b0, b0_save);
        b1 = _mm_add_epi32(b1, b1_save);

        // ABEF/CDGH back to row order a..h, both lanes.
        let t = _mm_shuffle_epi32(a0, 0x1B);
        let a1 = _mm_shuffle_epi32(a1, 0xB1);
        _mm_storeu_si128(
            sa.as_mut_ptr() as *mut __m128i,
            _mm_blend_epi16(t, a1, 0xF0),
        );
        _mm_storeu_si128(
            sa.as_mut_ptr().add(4) as *mut __m128i,
            _mm_alignr_epi8(a1, t, 8),
        );
        let t = _mm_shuffle_epi32(b0, 0x1B);
        let b1 = _mm_shuffle_epi32(b1, 0xB1);
        _mm_storeu_si128(
            sb.as_mut_ptr() as *mut __m128i,
            _mm_blend_epi16(t, b1, 0xF0),
        );
        _mm_storeu_si128(
            sb.as_mut_ptr().add(4) as *mut __m128i,
            _mm_alignr_epi8(b1, t, 8),
        );
    }
}

/// One-shot SHA-256 of a byte slice.
///
/// Short inputs (≤ 119 bytes — at most two blocks once padded, which
/// covers every ViewMap wire structure: 72-byte VDs, 32-byte cash
/// messages, 8-byte secrets) skip the incremental hasher entirely: the
/// padded block(s) are assembled on the stack and compressed directly.
/// Longer inputs stream as before.
pub fn sha256(data: &[u8]) -> Digest32 {
    if data.len() < 120 {
        let mut state = H0;
        let mut blocks = [0u8; 128];
        blocks[..data.len()].copy_from_slice(data);
        blocks[data.len()] = 0x80;
        let two = data.len() >= 56;
        let end = if two { 128 } else { 64 };
        blocks[end - 8..end].copy_from_slice(&(data.len() as u64 * 8).to_be_bytes());
        let (first, second) = blocks.split_at(64);
        compress_dispatch(&mut state, first.try_into().expect("64-byte block"));
        if two {
            compress_dispatch(&mut state, second.try_into().expect("64-byte block"));
        }
        let mut out = [0u8; 32];
        for (i, w) in state.iter().enumerate() {
            out[4 * i..4 * i + 4].copy_from_slice(&w.to_be_bytes());
        }
        return Digest32(out);
    }
    let mut h = Sha256::new();
    h.update(data);
    h.finalize()
}

/// Hardware compression when available, scalar otherwise.
fn compress_dispatch(state: &mut [u32; 8], block: &[u8; 64]) {
    #[cfg(target_arch = "x86_64")]
    if shani::compress(state, block) {
        return;
    }
    compress_scalar(state, block);
}

// ── Multi-buffer hashing ────────────────────────────────────────────────

/// Scalar lane count for [`sha256_many`]: four independent schedules and
/// round chains, expressed as `[u32; 4]` lanes so the per-lane ops
/// autovectorize to 128-bit SIMD (and fill scalar ports elsewhere).
const SCALAR_LANES: usize = 4;

/// Four independent blocks through the scalar compression with
/// interleaved message schedules.
///
/// The W-expansion (σ0/σ1 shifts, rotates, adds — no cross-lane data
/// flow, no serial chain) runs across all four lanes in `[u32; 4]` rows,
/// which the compiler turns into 128-bit vector ops. The 64 rounds, whose
/// a..h dependency chain defeats vectorization (and whose 4-lane
/// interleaving spills 32 live `u32`s out of the 16 GP registers —
/// measured slower than sequential), then run one lane at a time with
/// the schedule read back per lane, plus `w[i] + K[i]` already folded in.
/// Per lane this computes bit-for-bit [`compress_scalar`].
fn compress_scalar_x4(states: &mut [[u32; 8]; SCALAR_LANES], blocks: &[&[u8; 64]; SCALAR_LANES]) {
    // Lane-major schedule rows; vectorizes 4-wide.
    let mut w = [[0u32; SCALAR_LANES]; 64];
    for (l, block) in blocks.iter().enumerate() {
        for i in 0..16 {
            w[i][l] = u32::from_be_bytes(block[4 * i..4 * i + 4].try_into().expect("4 bytes"));
        }
    }
    for i in 16..64 {
        let mut row = [0u32; SCALAR_LANES];
        for (l, rl) in row.iter_mut().enumerate() {
            let w15 = w[i - 15][l];
            let w2 = w[i - 2][l];
            let s0 = w15.rotate_right(7) ^ w15.rotate_right(18) ^ (w15 >> 3);
            let s1 = w2.rotate_right(17) ^ w2.rotate_right(19) ^ (w2 >> 10);
            *rl = w[i - 16][l]
                .wrapping_add(s0)
                .wrapping_add(w[i - 7][l])
                .wrapping_add(s1);
        }
        w[i] = row;
    }
    // Fold the round constants in vector-land too: rounds then add one
    // precomputed word instead of two.
    for (i, row) in w.iter_mut().enumerate() {
        for wl in row.iter_mut() {
            *wl = wl.wrapping_add(K[i]);
        }
    }
    for (l, state) in states.iter_mut().enumerate() {
        let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = *state;
        for wk in &w {
            let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
            let ch = (e & f) ^ ((!e) & g);
            let t1 = h.wrapping_add(s1).wrapping_add(ch).wrapping_add(wk[l]);
            let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
            let maj = (a & b) ^ (a & c) ^ (b & c);
            let t2 = s0.wrapping_add(maj);
            h = g;
            g = f;
            f = e;
            e = d.wrapping_add(t1);
            d = c;
            c = b;
            b = a;
            a = t1.wrapping_add(t2);
        }
        state[0] = state[0].wrapping_add(a);
        state[1] = state[1].wrapping_add(b);
        state[2] = state[2].wrapping_add(c);
        state[3] = state[3].wrapping_add(d);
        state[4] = state[4].wrapping_add(e);
        state[5] = state[5].wrapping_add(f);
        state[6] = state[6].wrapping_add(g);
        state[7] = state[7].wrapping_add(h);
    }
}

/// One message's block stream for a multi-buffer lane: full 64-byte
/// blocks are served straight from the message slice (no copy), then the
/// FIPS padding tail (residue + 0x80 + zeros + big-endian bit length,
/// one or two blocks) from a lane-local buffer.
struct MsgStream<'a> {
    msg: &'a [u8],
    /// Index of this message's digest in the output array.
    out_idx: usize,
    /// Number of whole blocks served from `msg` directly.
    n_full: usize,
    /// Total blocks including the padding tail.
    n_blocks: usize,
    /// Next block to serve; `cur = next - 1` after [`advance`](Self::advance).
    next: usize,
    cur: usize,
    tail: [u8; 128],
}

impl<'a> MsgStream<'a> {
    fn new(msg: &'a [u8], out_idx: usize) -> Self {
        let n_full = msg.len() / 64;
        let rem = msg.len() - n_full * 64;
        let mut tail = [0u8; 128];
        tail[..rem].copy_from_slice(&msg[n_full * 64..]);
        tail[rem] = 0x80;
        let tail_blocks = if rem >= 56 { 2 } else { 1 };
        let bit_len = (msg.len() as u64).wrapping_mul(8);
        tail[tail_blocks * 64 - 8..tail_blocks * 64].copy_from_slice(&bit_len.to_be_bytes());
        MsgStream {
            msg,
            out_idx,
            n_full,
            n_blocks: n_full + tail_blocks,
            next: 0,
            cur: 0,
            tail,
        }
    }

    fn has_block(&self) -> bool {
        self.next < self.n_blocks
    }

    /// Step to the next block; [`block`](Self::block) then returns it.
    /// Split from `block` so the driver can advance every lane mutably
    /// first and then borrow all the block references at once.
    fn advance(&mut self) {
        debug_assert!(self.has_block());
        self.cur = self.next;
        self.next += 1;
    }

    fn block(&self) -> &[u8; 64] {
        if self.cur < self.n_full {
            self.msg[self.cur * 64..self.cur * 64 + 64]
                .try_into()
                .expect("64-byte block")
        } else {
            let off = (self.cur - self.n_full) * 64;
            self.tail[off..off + 64].try_into().expect("64-byte block")
        }
    }
}

/// The lane scheduler behind [`sha256_many`]: keep `N` message streams in
/// flight, compressing one block of each per step via `compress_n`. When
/// a lane's message completes, its digest is written and the lane
/// immediately reloads with the next message (double buffering) — so the
/// interleaved kernel runs at full width until fewer than `N` messages
/// remain, and the stragglers finish on the single-stream path.
fn run_lanes<const N: usize>(
    msgs: &[&[u8]],
    out: &mut [Digest32],
    compress_n: impl Fn(&mut [[u32; 8]; N], &[&[u8; 64]; N]),
) {
    let mut next_msg = 0usize;
    let mut states = [[0u32; 8]; N];
    let mut streams: [Option<MsgStream>; N] = std::array::from_fn(|_| None);
    loop {
        // Refill: finalize finished lanes, load the next message.
        for l in 0..N {
            loop {
                match &streams[l] {
                    Some(s) if s.has_block() => break,
                    Some(s) => {
                        out[s.out_idx] = digest_from_state(&states[l]);
                        streams[l] = None;
                    }
                    None => {
                        if next_msg < msgs.len() {
                            streams[l] = Some(MsgStream::new(msgs[next_msg], next_msg));
                            states[l] = H0;
                            next_msg += 1;
                        } else {
                            break;
                        }
                    }
                }
            }
        }
        if streams.iter().any(|s| s.is_none()) {
            break;
        }
        for s in streams.iter_mut() {
            s.as_mut().expect("refilled above").advance();
        }
        let blocks: [&[u8; 64]; N] =
            std::array::from_fn(|l| streams[l].as_ref().expect("refilled above").block());
        compress_n(&mut states, &blocks);
    }
    // Fewer than N streams left: drain them one block at a time.
    for l in 0..N {
        if let Some(s) = &mut streams[l] {
            while s.has_block() {
                s.advance();
                let block = *s.block();
                compress_dispatch(&mut states[l], &block);
            }
            out[s.out_idx] = digest_from_state(&states[l]);
        }
    }
}

/// Multi-buffer one-shot SHA-256: the digests of many independent
/// messages, hashed in interleaved lanes (see the module docs). Returns
/// `out[i] == sha256(msgs[i])` for every `i` — the interleaving is purely
/// an execution strategy, property-tested against the single-stream
/// oracle.
///
/// This is the throughput primitive behind viewmap link-key hashing and
/// `submit_batch_warm`'s ingest-side key precompute: those call sites
/// hold thousands of independent 72-byte VD encodings, exactly the shape
/// where per-message dependency chains leave the most throughput on the
/// table.
pub fn sha256_many(msgs: &[&[u8]]) -> Vec<Digest32> {
    let mut out = vec![Digest32([0u8; 32]); msgs.len()];
    sha256_many_into(msgs, &mut out);
    out
}

/// As [`sha256_many`], writing into a caller-owned output slice (must be
/// the same length as `msgs`).
pub fn sha256_many_into(msgs: &[&[u8]], out: &mut [Digest32]) {
    assert_eq!(msgs.len(), out.len(), "one digest slot per message");
    #[cfg(target_arch = "x86_64")]
    if shani::available() {
        run_lanes::<2>(msgs, out, |states, blocks| {
            let [sa, sb] = states;
            let ok = shani::compress2(sa, blocks[0], sb, blocks[1]);
            debug_assert!(ok, "availability checked by the dispatch gate");
        });
        return;
    }
    run_lanes::<SCALAR_LANES>(msgs, out, compress_scalar_x4);
}

#[cfg(test)]
mod tests {
    use super::*;

    // FIPS 180-4 / NIST CAVP known-answer vectors.
    const VECTORS: &[(&str, &str)] = &[
        (
            "",
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855",
        ),
        (
            "abc",
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad",
        ),
        (
            "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq",
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1",
        ),
        (
            "abcdefghbcdefghicdefghijdefghijkefghijklfghijklmghijklmnhijklmnoijklmnopjklmnopqklmnopqrlmnopqrsmnopqrstnopqrstu",
            "cf5b16a778af8380036ce59e7b0492370b249b11e8f07a51afac45037afee9d1",
        ),
    ];

    #[test]
    fn known_answer_vectors() {
        for (input, expected) in VECTORS {
            assert_eq!(
                &sha256(input.as_bytes()).to_hex(),
                expected,
                "input {input:?}"
            );
        }
    }

    #[test]
    fn million_a() {
        let data = vec![b'a'; 1_000_000];
        assert_eq!(
            sha256(&data).to_hex(),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
        );
    }

    #[test]
    fn incremental_matches_oneshot_at_all_split_points() {
        let data: Vec<u8> = (0..300u32).map(|i| (i * 7 % 251) as u8).collect();
        let expected = sha256(&data);
        for split in [0, 1, 55, 56, 63, 64, 65, 127, 128, 200, 300] {
            let mut h = Sha256::new();
            h.update(&data[..split]);
            h.update(&data[split..]);
            assert_eq!(h.finalize(), expected, "split at {split}");
        }
    }

    #[test]
    fn incremental_many_small_updates() {
        let data = b"the quick brown fox jumps over the lazy dog";
        let mut h = Sha256::new();
        for b in data {
            h.update(std::slice::from_ref(b));
        }
        assert_eq!(h.finalize(), sha256(data));
    }

    #[test]
    fn padding_boundary_lengths() {
        // Lengths around the 55/56/64 padding boundaries must all hash
        // consistently with a two-part incremental computation.
        for len in 50..70usize {
            let data = vec![0xa5u8; len];
            let one = sha256(&data);
            let mut h = Sha256::new();
            h.update(&data[..len / 2]);
            h.update(&data[len / 2..]);
            assert_eq!(h.finalize(), one, "len {len}");
        }
    }

    #[cfg(target_arch = "x86_64")]
    #[test]
    fn shani_compression_matches_scalar_on_random_blocks() {
        // Property: the hardware and scalar compression functions are the
        // same FIPS 180-4 map on random (state, block) pairs — not just on
        // structured hash inputs, where a schedule bug could hide behind
        // padding regularities.
        if !super::shani::available() {
            eprintln!("skipping: CPU lacks SHA extensions");
            return;
        }
        // Deterministic xorshift — no RNG dependency in this crate.
        let mut x = 0x243f_6a88_85a3_08d3u64;
        let mut next = move || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        };
        for case in 0..500 {
            let mut state = [0u32; 8];
            for w in state.iter_mut() {
                *w = next() as u32;
            }
            let mut block = [0u8; 64];
            for b in block.iter_mut() {
                *b = next() as u8;
            }
            let mut hw = state;
            assert!(super::shani::compress(&mut hw, &block));
            let mut sw = state;
            compress_scalar(&mut sw, &block);
            assert_eq!(hw, sw, "case {case}: SHA-NI diverged from scalar");
        }
    }

    /// Deterministic xorshift byte stream (no RNG dependency here).
    fn xorshift_bytes(seed: u64, len: usize) -> Vec<u8> {
        let mut x = seed | 1;
        (0..len)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                x as u8
            })
            .collect()
    }

    #[test]
    fn many_matches_oracle_at_padding_boundaries() {
        // 55/56/63/64/65 straddle the one-vs-two-tail-block and
        // block-boundary cases; 119/120 straddle the short-input fast
        // path in `sha256`. Every length must agree with the
        // single-stream oracle, in every position of the batch.
        let lens = [
            0usize, 1, 54, 55, 56, 57, 63, 64, 65, 119, 120, 127, 128, 129, 200,
        ];
        let data: Vec<Vec<u8>> = lens
            .iter()
            .enumerate()
            .map(|(i, &len)| xorshift_bytes(0x9e37 + i as u64, len))
            .collect();
        let msgs: Vec<&[u8]> = data.iter().map(|d| d.as_slice()).collect();
        let got = sha256_many(&msgs);
        for (i, msg) in msgs.iter().enumerate() {
            assert_eq!(got[i], sha256(msg), "len {}", msg.len());
        }
    }

    #[test]
    fn many_matches_oracle_on_random_unequal_batches() {
        // Random lengths and batch sizes around the lane counts (0, 1,
        // exactly 2, exactly 4, odd remainders): lane refill and the
        // straggler drain must never mix streams up.
        let mut x = 0x243f_6a88u64;
        let mut next = move || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        };
        for batch in 0..12usize {
            let data: Vec<Vec<u8>> = (0..batch)
                .map(|i| xorshift_bytes(next(), (next() % 300) as usize + i))
                .collect();
            let msgs: Vec<&[u8]> = data.iter().map(|d| d.as_slice()).collect();
            let got = sha256_many(&msgs);
            assert_eq!(got.len(), batch);
            for (i, msg) in msgs.iter().enumerate() {
                assert_eq!(got[i], sha256(msg), "batch {batch} msg {i}");
            }
        }
    }

    #[test]
    fn scalar_multibuffer_lanes_match_oracle() {
        // Drive the 4-wide scalar kernel directly (whatever the host
        // CPU offers), so the fallback multi-buffer path is covered even
        // on SHA-NI machines.
        let data: Vec<Vec<u8>> = (0..23)
            .map(|i| xorshift_bytes(7 + i, (i as usize * 37) % 250))
            .collect();
        let msgs: Vec<&[u8]> = data.iter().map(|d| d.as_slice()).collect();
        let mut got = vec![Digest32([0u8; 32]); msgs.len()];
        run_lanes::<SCALAR_LANES>(&msgs, &mut got, compress_scalar_x4);
        for (i, msg) in msgs.iter().enumerate() {
            assert_eq!(got[i], sha256(msg), "msg {i}");
        }
    }

    #[test]
    fn two_lane_driver_matches_oracle_with_scalar_kernel() {
        // The 2-lane scheduler (the SHA-NI shape) exercised with the
        // scalar compression, so the driver logic is covered on any CPU.
        let data: Vec<Vec<u8>> = (0..9)
            .map(|i| xorshift_bytes(31 + i, (i as usize * 61) % 200))
            .collect();
        let msgs: Vec<&[u8]> = data.iter().map(|d| d.as_slice()).collect();
        let mut got = vec![Digest32([0u8; 32]); msgs.len()];
        run_lanes::<2>(&msgs, &mut got, |states, blocks| {
            compress_scalar(&mut states[0], blocks[0]);
            compress_scalar(&mut states[1], blocks[1]);
        });
        for (i, msg) in msgs.iter().enumerate() {
            assert_eq!(got[i], sha256(msg), "msg {i}");
        }
    }

    #[cfg(target_arch = "x86_64")]
    #[test]
    fn shani_pair_compression_matches_scalar_on_random_blocks() {
        // Mirror of the single-stream SHA-NI property test: the
        // interleaved two-stream kernel must be the FIPS map on both
        // lanes for random (state, block) pairs.
        if !super::shani::available() {
            eprintln!("skipping: CPU lacks SHA extensions");
            return;
        }
        let mut x = 0x1319_8a2e_0370_7344u64;
        let mut next = move || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        };
        for case in 0..500 {
            let mut mk_state = || {
                let mut s = [0u32; 8];
                for w in s.iter_mut() {
                    *w = next() as u32;
                }
                s
            };
            let (sa, sb) = (mk_state(), mk_state());
            let mut mk_block = || {
                let mut b = [0u8; 64];
                for v in b.iter_mut() {
                    *v = next() as u8;
                }
                b
            };
            let (ba, bb) = (mk_block(), mk_block());
            let (mut hw_a, mut hw_b) = (sa, sb);
            assert!(super::shani::compress2(&mut hw_a, &ba, &mut hw_b, &bb));
            let (mut sw_a, mut sw_b) = (sa, sb);
            compress_scalar(&mut sw_a, &ba);
            compress_scalar(&mut sw_b, &bb);
            assert_eq!(hw_a, sw_a, "case {case}: lane A diverged");
            assert_eq!(hw_b, sw_b, "case {case}: lane B diverged");
        }
    }

    #[test]
    fn clone_preserves_state() {
        let mut h = Sha256::new();
        h.update(b"prefix");
        let h2 = h.clone();
        h.update(b"-a");
        let mut h2 = h2;
        h2.update(b"-a");
        assert_eq!(h.finalize(), h2.finalize());
    }
}
