//! Cryptographic substrate for ViewMap, implemented from scratch.
//!
//! The ViewMap protocol (NSDI '17) needs three primitives:
//!
//! * a cryptographic hash for video fingerprints and VP identifiers
//!   ([`sha256()`], truncated to 128 bits on the wire),
//! * big-integer arithmetic ([`bigint`]) as the substrate for
//! * RSA blind signatures ([`rsa`]) used for the untraceable virtual cash
//!   of Section 5.3 / Appendix A (Chaum's scheme).
//!
//! Nothing here depends on the rest of the workspace; the protocol crates
//! build on top of this one.
//!
//! # Security note
//!
//! This is a research reproduction. The RSA implementation uses raw
//! (unpadded) exponentiation over full-domain-hashed messages exactly as
//! the blind-signature construction in the paper's appendix requires, and
//! the arithmetic is not constant-time. Do not reuse it outside of this
//! reproduction.

// `deny` rather than `forbid`: the one sanctioned exception is the
// runtime-detected SHA-NI compression path in `sha256::shani`, which
// carries its own `allow` plus a safety argument and a scalar-equivalence
// property test.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod bigint;
pub mod rsa;
pub mod sha256;

pub use bigint::BigUint;
pub use rsa::{BlindedMessage, BlindingSecret, RsaKeyPair, RsaPublicKey, Signature};
pub use sha256::{sha256, sha256_many, sha256_many_into, Digest32, Sha256};

/// A 128-bit digest: the truncation of SHA-256 used in ViewMap wire formats.
///
/// The paper's view digest carries a 16-byte cascaded hash and a 16-byte VP
/// identifier; both are [`Digest16`] values here.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Digest16(pub [u8; 16]);

impl Digest16 {
    /// The all-zero digest (used as a placeholder, never produced by hashing).
    pub const ZERO: Digest16 = Digest16([0u8; 16]);

    /// Hash arbitrary bytes and truncate to 128 bits.
    pub fn hash(data: &[u8]) -> Self {
        let d = sha256(data);
        let mut out = [0u8; 16];
        out.copy_from_slice(&d.0[..16]);
        Digest16(out)
    }

    /// Hash many independent messages and truncate each to 128 bits, via
    /// the multi-buffer engine ([`sha256_many`]): `out[i]` equals
    /// `Digest16::hash(msgs[i])`, computed at interleaved-lane
    /// throughput. This is the batched form viewmap link-key
    /// precomputation runs on.
    pub fn hash_many(msgs: &[&[u8]]) -> Vec<Digest16> {
        sha256_many(msgs)
            .into_iter()
            .map(|d| {
                let mut out = [0u8; 16];
                out.copy_from_slice(&d.0[..16]);
                Digest16(out)
            })
            .collect()
    }

    /// Hash the concatenation of several byte slices (domain-order matters).
    pub fn hash_parts(parts: &[&[u8]]) -> Self {
        let mut h = Sha256::new();
        for p in parts {
            h.update(p);
        }
        let d = h.finalize();
        let mut out = [0u8; 16];
        out.copy_from_slice(&d.0[..16]);
        Digest16(out)
    }

    /// Raw bytes of the digest.
    pub fn as_bytes(&self) -> &[u8; 16] {
        &self.0
    }

    /// Interpret the first 8 bytes as a little-endian `u64` (for hashing
    /// into Bloom filter slots and hash maps).
    pub fn low_u64(&self) -> u64 {
        u64::from_le_bytes(self.0[..8].try_into().expect("16-byte digest"))
    }

    /// Interpret the last 8 bytes as a little-endian `u64`.
    pub fn high_u64(&self) -> u64 {
        u64::from_le_bytes(self.0[8..].try_into().expect("16-byte digest"))
    }
}

/// A 64-bit record checksum: the first 8 bytes of SHA-256, little-endian.
///
/// This is the integrity framing the storage layer (`vm-store`) stamps on
/// every append-log record body: strong enough to make a torn or
/// bit-rotted tail record indistinguishable from "no record here" (the
/// recovery invariant), while costing 8 bytes per record instead of 32.
/// It is **not** a collision-resistant commitment — protocol-level
/// commitments stay on full [`Digest16`]/[`Digest32`] values.
pub fn checksum64(data: &[u8]) -> u64 {
    let d = sha256(data);
    u64::from_le_bytes(d.0[..8].try_into().expect("32-byte digest"))
}

/// [`checksum64`] over many independent bodies at multi-buffer
/// throughput: `out[i] == checksum64(msgs[i])`, hashed through
/// [`sha256_many`]'s interleaved lanes. The storage layer stamps a
/// whole group commit's records in one call instead of one serial hash
/// per record.
pub fn checksum64_many(msgs: &[&[u8]]) -> Vec<u64> {
    sha256_many(msgs)
        .into_iter()
        .map(|d| u64::from_le_bytes(d.0[..8].try_into().expect("32-byte digest")))
        .collect()
}

impl std::fmt::Debug for Digest16 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Digest16(")?;
        for b in &self.0 {
            write!(f, "{b:02x}")?;
        }
        write!(f, ")")
    }
}

impl std::fmt::Display for Digest16 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for b in &self.0 {
            write!(f, "{b:02x}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digest16_is_prefix_of_sha256() {
        let full = sha256(b"viewmap");
        let short = Digest16::hash(b"viewmap");
        assert_eq!(&full.0[..16], short.as_bytes());
    }

    #[test]
    fn digest16_parts_equals_concat() {
        let a = Digest16::hash_parts(&[b"ab", b"cd"]);
        let b = Digest16::hash(b"abcd");
        assert_eq!(a, b);
    }

    #[test]
    fn digest16_u64_views_cover_all_bytes() {
        let d = Digest16([
            1, 0, 0, 0, 0, 0, 0, 0, //
            2, 0, 0, 0, 0, 0, 0, 0,
        ]);
        assert_eq!(d.low_u64(), 1);
        assert_eq!(d.high_u64(), 2);
    }

    #[test]
    fn checksum64_is_sha256_prefix_and_detects_corruption() {
        let data = b"viewmap record body";
        let full = sha256(data);
        assert_eq!(
            checksum64(data),
            u64::from_le_bytes(full.0[..8].try_into().unwrap())
        );
        let mut flipped = data.to_vec();
        for i in 0..flipped.len() {
            flipped[i] ^= 0x01;
            assert_ne!(checksum64(&flipped), checksum64(data), "flip at byte {i}");
            flipped[i] ^= 0x01;
        }
        assert_ne!(checksum64(b""), 0, "empty input still hashes");
    }

    #[test]
    fn checksum64_many_matches_single_calls() {
        let bodies: Vec<Vec<u8>> = (0..9usize)
            .map(|i| (0..i * 37 + 1).map(|j| (i * 31 + j) as u8).collect())
            .collect();
        for take in [0usize, 1, 2, 3, 9] {
            let msgs: Vec<&[u8]> = bodies[..take].iter().map(|b| b.as_slice()).collect();
            let batch = checksum64_many(&msgs);
            let single: Vec<u64> = msgs.iter().map(|m| checksum64(m)).collect();
            assert_eq!(batch, single, "take {take}");
        }
    }

    #[test]
    fn digest16_display_roundtrip_length() {
        let d = Digest16::hash(b"x");
        assert_eq!(format!("{d}").len(), 32);
    }
}
