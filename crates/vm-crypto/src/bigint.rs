//! Arbitrary-precision unsigned integers, from scratch.
//!
//! This is the arithmetic substrate for the RSA blind signatures used by
//! ViewMap's untraceable rewarding (Section 5.3 / Appendix A). Limbs are
//! little-endian `u64`; division is Knuth's Algorithm D, so modular
//! exponentiation for 1024–2048-bit moduli is practical even in debug
//! builds.
//!
//! The implementation is deliberately straightforward (no Montgomery form,
//! no constant-time guarantees): correctness and reviewability over speed.

use rand::Rng;

/// An arbitrary-precision unsigned integer.
///
/// Invariant: `limbs` has no trailing zero limbs; zero is the empty vector.
#[derive(Clone, PartialEq, Eq, Default)]
pub struct BigUint {
    limbs: Vec<u64>,
}

impl std::fmt::Debug for BigUint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "BigUint(0x{})", self.to_hex())
    }
}

impl BigUint {
    /// The value 0.
    pub fn zero() -> Self {
        BigUint { limbs: Vec::new() }
    }

    /// The value 1.
    pub fn one() -> Self {
        BigUint { limbs: vec![1] }
    }

    /// Construct from a `u64`.
    pub fn from_u64(v: u64) -> Self {
        if v == 0 {
            Self::zero()
        } else {
            BigUint { limbs: vec![v] }
        }
    }

    /// Construct from big-endian bytes (leading zeros allowed).
    pub fn from_bytes_be(bytes: &[u8]) -> Self {
        let mut limbs = Vec::with_capacity(bytes.len() / 8 + 1);
        let mut chunk_iter = bytes.rchunks(8);
        for chunk in &mut chunk_iter {
            let mut v = 0u64;
            for &b in chunk {
                v = (v << 8) | b as u64;
            }
            limbs.push(v);
        }
        let mut n = BigUint { limbs };
        n.normalize();
        n
    }

    /// Big-endian byte encoding without leading zeros (empty for 0).
    pub fn to_bytes_be(&self) -> Vec<u8> {
        if self.is_zero() {
            return Vec::new();
        }
        let mut out = Vec::with_capacity(self.limbs.len() * 8);
        for (i, limb) in self.limbs.iter().enumerate().rev() {
            let bytes = limb.to_be_bytes();
            if i == self.limbs.len() - 1 {
                let skip = (limb.leading_zeros() / 8) as usize;
                out.extend_from_slice(&bytes[skip..]);
            } else {
                out.extend_from_slice(&bytes);
            }
        }
        out
    }

    /// Lowercase hex encoding (no leading zeros; "0" for zero).
    pub fn to_hex(&self) -> String {
        if self.is_zero() {
            return "0".to_string();
        }
        let mut s = String::new();
        for (i, limb) in self.limbs.iter().enumerate().rev() {
            if i == self.limbs.len() - 1 {
                s.push_str(&format!("{limb:x}"));
            } else {
                s.push_str(&format!("{limb:016x}"));
            }
        }
        s
    }

    /// True iff the value is 0.
    pub fn is_zero(&self) -> bool {
        self.limbs.is_empty()
    }

    /// True iff the value is 1.
    pub fn is_one(&self) -> bool {
        self.limbs.len() == 1 && self.limbs[0] == 1
    }

    /// True iff the value is even (0 is even).
    pub fn is_even(&self) -> bool {
        self.limbs.first().is_none_or(|l| l & 1 == 0)
    }

    /// Number of significant bits (0 for the value 0).
    pub fn bit_len(&self) -> usize {
        match self.limbs.last() {
            None => 0,
            Some(top) => self.limbs.len() * 64 - top.leading_zeros() as usize,
        }
    }

    /// The `i`-th bit (little-endian bit order).
    pub fn bit(&self, i: usize) -> bool {
        let limb = i / 64;
        if limb >= self.limbs.len() {
            return false;
        }
        (self.limbs[limb] >> (i % 64)) & 1 == 1
    }

    fn normalize(&mut self) {
        while self.limbs.last() == Some(&0) {
            self.limbs.pop();
        }
    }

    /// Addition.
    pub fn add(&self, other: &BigUint) -> BigUint {
        let (long, short) = if self.limbs.len() >= other.limbs.len() {
            (&self.limbs, &other.limbs)
        } else {
            (&other.limbs, &self.limbs)
        };
        let mut out = Vec::with_capacity(long.len() + 1);
        let mut carry = 0u64;
        for (i, &l) in long.iter().enumerate() {
            let b = short.get(i).copied().unwrap_or(0);
            let (s1, c1) = l.overflowing_add(b);
            let (s2, c2) = s1.overflowing_add(carry);
            out.push(s2);
            carry = (c1 as u64) + (c2 as u64);
        }
        if carry > 0 {
            out.push(carry);
        }
        let mut n = BigUint { limbs: out };
        n.normalize();
        n
    }

    /// Subtraction; returns `None` if `other > self`.
    pub fn checked_sub(&self, other: &BigUint) -> Option<BigUint> {
        if self < other {
            return None;
        }
        let mut out = Vec::with_capacity(self.limbs.len());
        let mut borrow = 0u64;
        for i in 0..self.limbs.len() {
            let b = other.limbs.get(i).copied().unwrap_or(0);
            let (d1, b1) = self.limbs[i].overflowing_sub(b);
            let (d2, b2) = d1.overflowing_sub(borrow);
            out.push(d2);
            borrow = (b1 as u64) + (b2 as u64);
        }
        debug_assert_eq!(borrow, 0);
        let mut n = BigUint { limbs: out };
        n.normalize();
        Some(n)
    }

    /// Subtraction; panics if `other > self`.
    pub fn sub(&self, other: &BigUint) -> BigUint {
        self.checked_sub(other)
            .expect("BigUint::sub would underflow")
    }

    /// Schoolbook multiplication.
    pub fn mul(&self, other: &BigUint) -> BigUint {
        if self.is_zero() || other.is_zero() {
            return BigUint::zero();
        }
        let mut out = vec![0u64; self.limbs.len() + other.limbs.len()];
        for (i, &a) in self.limbs.iter().enumerate() {
            if a == 0 {
                continue;
            }
            let mut carry = 0u128;
            for (j, &b) in other.limbs.iter().enumerate() {
                let cur = out[i + j] as u128 + (a as u128) * (b as u128) + carry;
                out[i + j] = cur as u64;
                carry = cur >> 64;
            }
            let mut k = i + other.limbs.len();
            while carry > 0 {
                let cur = out[k] as u128 + carry;
                out[k] = cur as u64;
                carry = cur >> 64;
                k += 1;
            }
        }
        let mut n = BigUint { limbs: out };
        n.normalize();
        n
    }

    /// Left shift by `bits`.
    pub fn shl(&self, bits: usize) -> BigUint {
        if self.is_zero() {
            return BigUint::zero();
        }
        let limb_shift = bits / 64;
        let bit_shift = bits % 64;
        let mut out = vec![0u64; limb_shift];
        if bit_shift == 0 {
            out.extend_from_slice(&self.limbs);
        } else {
            let mut carry = 0u64;
            for &l in &self.limbs {
                out.push((l << bit_shift) | carry);
                carry = l >> (64 - bit_shift);
            }
            if carry > 0 {
                out.push(carry);
            }
        }
        let mut n = BigUint { limbs: out };
        n.normalize();
        n
    }

    /// Right shift by `bits`.
    pub fn shr(&self, bits: usize) -> BigUint {
        let limb_shift = bits / 64;
        if limb_shift >= self.limbs.len() {
            return BigUint::zero();
        }
        let bit_shift = bits % 64;
        let src = &self.limbs[limb_shift..];
        let mut out = Vec::with_capacity(src.len());
        if bit_shift == 0 {
            out.extend_from_slice(src);
        } else {
            for i in 0..src.len() {
                let lo = src[i] >> bit_shift;
                let hi = if i + 1 < src.len() {
                    src[i + 1] << (64 - bit_shift)
                } else {
                    0
                };
                out.push(lo | hi);
            }
        }
        let mut n = BigUint { limbs: out };
        n.normalize();
        n
    }

    /// Division with remainder (Knuth Algorithm D). Panics on division by 0.
    pub fn div_rem(&self, divisor: &BigUint) -> (BigUint, BigUint) {
        assert!(!divisor.is_zero(), "BigUint division by zero");
        if self < divisor {
            return (BigUint::zero(), self.clone());
        }
        if divisor.limbs.len() == 1 {
            let d = divisor.limbs[0];
            let mut q = Vec::with_capacity(self.limbs.len());
            let mut rem = 0u128;
            for &l in self.limbs.iter().rev() {
                let cur = (rem << 64) | l as u128;
                q.push((cur / d as u128) as u64);
                rem = cur % d as u128;
            }
            q.reverse();
            let mut qn = BigUint { limbs: q };
            qn.normalize();
            return (qn, BigUint::from_u64(rem as u64));
        }

        // Normalize so the divisor's top bit is set.
        let shift = divisor.limbs.last().expect("nonzero").leading_zeros() as usize;
        let u = self.shl(shift);
        let v = divisor.shl(shift);
        let n = v.limbs.len();
        let m = u.limbs.len() - n;
        let mut un = u.limbs.clone();
        un.push(0); // u has m+n+1 limbs
        let vn = &v.limbs;
        let mut q = vec![0u64; m + 1];

        for j in (0..=m).rev() {
            // Estimate q_hat from the top two limbs.
            let top = ((un[j + n] as u128) << 64) | un[j + n - 1] as u128;
            let mut q_hat = top / vn[n - 1] as u128;
            let mut r_hat = top % vn[n - 1] as u128;
            while q_hat >= 1u128 << 64
                || q_hat * vn[n - 2] as u128 > ((r_hat << 64) | un[j + n - 2] as u128)
            {
                q_hat -= 1;
                r_hat += vn[n - 1] as u128;
                if r_hat >= 1u128 << 64 {
                    break;
                }
            }
            // Multiply-and-subtract: un[j..j+n+1] -= q_hat * vn
            let mut borrow = 0i128;
            let mut carry = 0u128;
            for i in 0..n {
                let p = q_hat * vn[i] as u128 + carry;
                carry = p >> 64;
                let sub = (un[j + i] as i128) - (p as u64 as i128) - borrow;
                if sub < 0 {
                    un[j + i] = (sub + (1i128 << 64)) as u64;
                    borrow = 1;
                } else {
                    un[j + i] = sub as u64;
                    borrow = 0;
                }
            }
            let sub = (un[j + n] as i128) - (carry as i128) - borrow;
            if sub < 0 {
                // q_hat was one too large: add back.
                un[j + n] = (sub + (1i128 << 64)) as u64;
                q_hat -= 1;
                let mut c = 0u128;
                for i in 0..n {
                    let s = un[j + i] as u128 + vn[i] as u128 + c;
                    un[j + i] = s as u64;
                    c = s >> 64;
                }
                un[j + n] = un[j + n].wrapping_add(c as u64);
            } else {
                un[j + n] = sub as u64;
            }
            q[j] = q_hat as u64;
        }

        let mut quotient = BigUint { limbs: q };
        quotient.normalize();
        let mut rem = BigUint {
            limbs: un[..n].to_vec(),
        };
        rem.normalize();
        (quotient, rem.shr(shift))
    }

    /// `self mod m`.
    pub fn rem(&self, m: &BigUint) -> BigUint {
        self.div_rem(m).1
    }

    /// Modular multiplication `(self * other) mod m`.
    pub fn mulmod(&self, other: &BigUint, m: &BigUint) -> BigUint {
        self.mul(other).rem(m)
    }

    /// Modular exponentiation `self^exp mod m` (square-and-multiply).
    pub fn modpow(&self, exp: &BigUint, m: &BigUint) -> BigUint {
        assert!(!m.is_zero(), "modpow modulus must be nonzero");
        if m.is_one() {
            return BigUint::zero();
        }
        let mut base = self.rem(m);
        let mut result = BigUint::one();
        for i in 0..exp.bit_len() {
            if exp.bit(i) {
                result = result.mulmod(&base, m);
            }
            if i + 1 < exp.bit_len() {
                base = base.mulmod(&base, m);
            }
        }
        result
    }

    /// Greatest common divisor (binary-free Euclid via div_rem).
    pub fn gcd(&self, other: &BigUint) -> BigUint {
        let mut a = self.clone();
        let mut b = other.clone();
        while !b.is_zero() {
            let r = a.rem(&b);
            a = b;
            b = r;
        }
        a
    }

    /// Modular inverse of `self` modulo `m`, if it exists (gcd(self, m)=1).
    ///
    /// Extended Euclid maintaining coefficients over signed pairs.
    pub fn modinv(&self, m: &BigUint) -> Option<BigUint> {
        if m.is_zero() || m.is_one() {
            return None;
        }
        // r0 = m, r1 = self mod m; t0 = 0, t1 = 1 (signed)
        let mut r0 = m.clone();
        let mut r1 = self.rem(m);
        let mut t0 = (BigUint::zero(), false); // (magnitude, negative)
        let mut t1 = (BigUint::one(), false);
        while !r1.is_zero() {
            let (q, r2) = r0.div_rem(&r1);
            // t2 = t0 - q * t1 (signed arithmetic)
            let qt1 = q.mul(&t1.0);
            let t2 = signed_sub(&t0, &(qt1, t1.1));
            r0 = r1;
            r1 = r2;
            t0 = t1;
            t1 = t2;
        }
        if !r0.is_one() {
            return None;
        }
        let (mag, neg) = t0;
        Some(if neg {
            m.sub(&mag.rem(m)).rem(m)
        } else {
            mag.rem(m)
        })
    }

    /// Uniformly random integer in `[0, bound)`. Panics if bound is zero.
    pub fn random_below<R: Rng + ?Sized>(rng: &mut R, bound: &BigUint) -> BigUint {
        assert!(!bound.is_zero(), "random_below bound must be positive");
        let bits = bound.bit_len();
        loop {
            let candidate = Self::random_bits(rng, bits);
            if &candidate < bound {
                return candidate;
            }
        }
    }

    /// Random integer with at most `bits` bits.
    pub fn random_bits<R: Rng + ?Sized>(rng: &mut R, bits: usize) -> BigUint {
        let limb_count = bits.div_ceil(64);
        let mut limbs: Vec<u64> = (0..limb_count).map(|_| rng.gen()).collect();
        let extra = limb_count * 64 - bits;
        if extra > 0 {
            if let Some(top) = limbs.last_mut() {
                *top >>= extra;
            }
        }
        let mut n = BigUint { limbs };
        n.normalize();
        n
    }

    /// Random integer with exactly `bits` bits (top bit set).
    pub fn random_exact_bits<R: Rng + ?Sized>(rng: &mut R, bits: usize) -> BigUint {
        assert!(bits > 0);
        let mut n = Self::random_bits(rng, bits);
        // Force the top bit.
        let limb = (bits - 1) / 64;
        while n.limbs.len() <= limb {
            n.limbs.push(0);
        }
        n.limbs[limb] |= 1u64 << ((bits - 1) % 64);
        n.normalize();
        n
    }

    /// Miller–Rabin probabilistic primality test with `rounds` random bases
    /// (plus trial division by small primes).
    pub fn is_probable_prime<R: Rng + ?Sized>(&self, rng: &mut R, rounds: usize) -> bool {
        const SMALL_PRIMES: [u64; 25] = [
            2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61, 67, 71, 73, 79, 83,
            89, 97,
        ];
        if self.limbs.len() == 1 {
            let v = self.limbs[0];
            if v < 2 {
                return false;
            }
            if SMALL_PRIMES.contains(&v) {
                return true;
            }
        }
        if self.is_zero() || self.is_even() {
            return false;
        }
        for &p in &SMALL_PRIMES {
            let pb = BigUint::from_u64(p);
            if self.rem(&pb).is_zero() {
                return self == &pb;
            }
        }
        // self - 1 = d * 2^s
        let one = BigUint::one();
        let n_minus_1 = self.sub(&one);
        let mut d = n_minus_1.clone();
        let mut s = 0usize;
        while d.is_even() {
            d = d.shr(1);
            s += 1;
        }
        let two = BigUint::from_u64(2);
        let n_minus_2 = self.sub(&two);
        'witness: for _ in 0..rounds {
            let a = {
                let r = BigUint::random_below(rng, &n_minus_2.sub(&one));
                r.add(&two) // a in [2, n-2]
            };
            let mut x = a.modpow(&d, self);
            if x.is_one() || x == n_minus_1 {
                continue 'witness;
            }
            for _ in 0..s - 1 {
                x = x.mulmod(&x, self);
                if x == n_minus_1 {
                    continue 'witness;
                }
            }
            return false;
        }
        true
    }

    /// Generate a random probable prime with exactly `bits` bits.
    pub fn gen_prime<R: Rng + ?Sized>(rng: &mut R, bits: usize) -> BigUint {
        assert!(bits >= 8, "prime size too small");
        loop {
            let mut candidate = Self::random_exact_bits(rng, bits);
            // Force odd.
            candidate.limbs[0] |= 1;
            if candidate.is_probable_prime(rng, 24) {
                return candidate;
            }
        }
    }
}

/// Signed subtraction for (magnitude, is_negative) pairs: `a - b`.
fn signed_sub(a: &(BigUint, bool), b: &(BigUint, bool)) -> (BigUint, bool) {
    match (a.1, b.1) {
        (false, true) => (a.0.add(&b.0), false), // a - (-b) = a + b
        (true, false) => (a.0.add(&b.0), true),  // -a - b = -(a+b)
        (false, false) => {
            if a.0 >= b.0 {
                (a.0.sub(&b.0), false)
            } else {
                (b.0.sub(&a.0), true)
            }
        }
        (true, true) => {
            // -a - (-b) = b - a
            if b.0 >= a.0 {
                (b.0.sub(&a.0), false)
            } else {
                (a.0.sub(&b.0), true)
            }
        }
    }
}

impl PartialOrd for BigUint {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for BigUint {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        if self.limbs.len() != other.limbs.len() {
            return self.limbs.len().cmp(&other.limbs.len());
        }
        for (a, b) in self.limbs.iter().rev().zip(other.limbs.iter().rev()) {
            match a.cmp(b) {
                std::cmp::Ordering::Equal => continue,
                ord => return ord,
            }
        }
        std::cmp::Ordering::Equal
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn big(hex: &str) -> BigUint {
        let mut bytes = Vec::new();
        let s = if hex.len() % 2 == 1 {
            format!("0{hex}")
        } else {
            hex.to_string()
        };
        for i in (0..s.len()).step_by(2) {
            bytes.push(u8::from_str_radix(&s[i..i + 2], 16).expect("hex"));
        }
        BigUint::from_bytes_be(&bytes)
    }

    #[test]
    fn roundtrip_bytes() {
        for hex in [
            "0",
            "1",
            "ff",
            "100",
            "deadbeefcafebabe",
            "0123456789abcdef0123456789abcdef01",
        ] {
            let n = big(hex);
            let back = BigUint::from_bytes_be(&n.to_bytes_be());
            assert_eq!(n, back);
        }
    }

    #[test]
    fn add_sub_roundtrip() {
        let a = big("ffffffffffffffffffffffffffffffff");
        let b = big("1");
        let c = a.add(&b);
        assert_eq!(c.to_hex(), "100000000000000000000000000000000");
        assert_eq!(c.sub(&b), a);
    }

    #[test]
    fn checked_sub_underflow() {
        assert!(BigUint::from_u64(1)
            .checked_sub(&BigUint::from_u64(2))
            .is_none());
        assert_eq!(
            BigUint::from_u64(2).checked_sub(&BigUint::from_u64(2)),
            Some(BigUint::zero())
        );
    }

    #[test]
    fn mul_known() {
        let a = big("ffffffffffffffff");
        let b = big("ffffffffffffffff");
        assert_eq!(a.mul(&b).to_hex(), "fffffffffffffffe0000000000000001");
    }

    #[test]
    fn div_rem_small() {
        let (q, r) = BigUint::from_u64(100).div_rem(&BigUint::from_u64(7));
        assert_eq!(q, BigUint::from_u64(14));
        assert_eq!(r, BigUint::from_u64(2));
    }

    #[test]
    fn div_rem_multi_limb() {
        let a = big("123456789abcdef0123456789abcdef0123456789abcdef");
        let b = big("fedcba9876543210f");
        let (q, r) = a.div_rem(&b);
        assert_eq!(q.mul(&b).add(&r), a);
        assert!(r < b);
    }

    #[test]
    fn div_rem_requires_addback_case() {
        // Constructed so Algorithm D's q_hat over-estimates.
        let a = big("800000000000000000000000000000000000000000000000");
        let b = big("800000000000000000000000000000001");
        let (q, r) = a.div_rem(&b);
        assert_eq!(q.mul(&b).add(&r), a);
        assert!(r < b);
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn div_by_zero_panics() {
        let _ = BigUint::from_u64(1).div_rem(&BigUint::zero());
    }

    #[test]
    fn shifts() {
        let a = big("1");
        assert_eq!(a.shl(64).to_hex(), "10000000000000000");
        assert_eq!(a.shl(65).shr(65), a);
        assert_eq!(a.shr(1), BigUint::zero());
    }

    #[test]
    fn bit_len_and_bits() {
        let a = big("8000000000000001");
        assert_eq!(a.bit_len(), 64);
        assert!(a.bit(0));
        assert!(a.bit(63));
        assert!(!a.bit(1));
        assert!(!a.bit(64));
        assert_eq!(BigUint::zero().bit_len(), 0);
    }

    #[test]
    fn modpow_known() {
        // 2^10 mod 1000 = 24
        let r = BigUint::from_u64(2).modpow(&BigUint::from_u64(10), &BigUint::from_u64(1000));
        assert_eq!(r, BigUint::from_u64(24));
        // Fermat: a^(p-1) mod p = 1 for prime p
        let p = BigUint::from_u64(1_000_000_007);
        let a = BigUint::from_u64(123_456_789);
        assert_eq!(a.modpow(&p.sub(&BigUint::one()), &p), BigUint::one());
    }

    #[test]
    fn modpow_large_fermat() {
        let mut rng = StdRng::seed_from_u64(7);
        let p = BigUint::gen_prime(&mut rng, 192);
        let a = BigUint::random_below(&mut rng, &p);
        if !a.is_zero() {
            assert_eq!(a.modpow(&p.sub(&BigUint::one()), &p), BigUint::one());
        }
    }

    #[test]
    fn modinv_known() {
        // 3^{-1} mod 11 = 4
        let inv = BigUint::from_u64(3).modinv(&BigUint::from_u64(11)).unwrap();
        assert_eq!(inv, BigUint::from_u64(4));
        // No inverse when not coprime.
        assert!(BigUint::from_u64(6).modinv(&BigUint::from_u64(9)).is_none());
    }

    #[test]
    fn modinv_random_roundtrip() {
        let mut rng = StdRng::seed_from_u64(42);
        let m = BigUint::gen_prime(&mut rng, 128);
        for _ in 0..10 {
            let a = BigUint::random_below(&mut rng, &m);
            if a.is_zero() {
                continue;
            }
            let inv = a.modinv(&m).expect("prime modulus => invertible");
            assert_eq!(a.mulmod(&inv, &m), BigUint::one());
        }
    }

    #[test]
    fn gcd_known() {
        assert_eq!(
            BigUint::from_u64(48).gcd(&BigUint::from_u64(36)),
            BigUint::from_u64(12)
        );
        assert_eq!(
            BigUint::from_u64(17).gcd(&BigUint::zero()),
            BigUint::from_u64(17)
        );
    }

    #[test]
    fn primality_small_values() {
        let mut rng = StdRng::seed_from_u64(1);
        for (v, expected) in [
            (0u64, false),
            (1, false),
            (2, true),
            (3, true),
            (4, false),
            (97, true),
            (561, false), // Carmichael
            (7919, true),
            (7921, false),
        ] {
            assert_eq!(
                BigUint::from_u64(v).is_probable_prime(&mut rng, 16),
                expected,
                "value {v}"
            );
        }
    }

    #[test]
    fn gen_prime_has_requested_bits() {
        let mut rng = StdRng::seed_from_u64(99);
        let p = BigUint::gen_prime(&mut rng, 96);
        assert_eq!(p.bit_len(), 96);
        assert!(!p.is_even());
    }

    #[test]
    fn random_below_is_in_range() {
        let mut rng = StdRng::seed_from_u64(5);
        let bound = big("1000000000000000000000000");
        for _ in 0..50 {
            let r = BigUint::random_below(&mut rng, &bound);
            assert!(r < bound);
        }
    }

    #[test]
    fn ordering_across_limb_counts() {
        assert!(big("10000000000000000") > big("ffffffffffffffff"));
        assert!(big("ffffffffffffffff") < big("10000000000000000"));
        assert_eq!(big("ab").cmp(&big("ab")), std::cmp::Ordering::Equal);
    }
}
