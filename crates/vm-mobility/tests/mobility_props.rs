//! Property tests for the IDM law and the traffic simulation.
//!
//! The scenario harness (`vm-scenario`) leans on three behaviors the
//! unit suite only spot-checks: the IDM never produces unbounded or
//! non-finite accelerations, a seeded simulation is bit-deterministic
//! no matter where it runs (the whole seeded-repro story depends on
//! it), and the figure labels the bench output embeds are stable.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use vm_geo::{CityParams, Point, RoadNetwork};
use vm_mobility::{IdmParams, MobilityConfig, SpeedScenario, TrafficSim};

/// One seeded trace: positions and speeds after every step.
fn trace(net_seed: u64, sim_seed: u64, vehicles: usize, secs: usize) -> Vec<Vec<(Point, f64)>> {
    let mut nrng = StdRng::seed_from_u64(net_seed);
    let net = RoadNetwork::synthetic_city(&CityParams::small_area(), &mut nrng);
    let mut rng = StdRng::seed_from_u64(sim_seed);
    let mut sim = TrafficSim::new(&net, MobilityConfig::small(vehicles), &mut rng);
    let mut out = Vec::with_capacity(secs);
    for _ in 0..secs {
        sim.step(&mut rng);
        out.push(sim.states().into_iter().map(|s| (s.pos, s.speed)).collect());
    }
    out
}

proptest! {
    /// IDM acceleration is finite and never exceeds `a_max` (the free
    /// term is at most 1 and the interaction term only subtracts), for
    /// any speed, desired speed, and leader situation.
    #[test]
    fn idm_acceleration_is_bounded(
        v in 0.0f64..50.0,
        v0 in 0.5f64..50.0,
        gap in 0.05f64..600.0,
        v_leader in 0.0f64..50.0,
    ) {
        let idm = IdmParams::default();
        for leader in [None, Some((gap, v_leader))] {
            let a = idm.acceleration(v, v0, leader);
            prop_assert!(a.is_finite(), "accel must be finite: {a}");
            prop_assert!(
                a <= idm.a_max + 1e-12,
                "accel {a} exceeds a_max {}",
                idm.a_max
            );
        }
        // A leader can only ever reduce the acceleration.
        let free = idm.acceleration(v, v0, None);
        let following = idm.acceleration(v, v0, Some((gap, v_leader)));
        prop_assert!(following <= free + 1e-12, "{following} > free {free}");
    }

    /// Free-road sign: below the desired speed the IDM accelerates,
    /// above it the IDM brakes.
    #[test]
    fn idm_free_road_tracks_desired_speed(v0 in 1.0f64..40.0, frac in 0.05f64..3.0) {
        let idm = IdmParams::default();
        let v = v0 * frac;
        let a = idm.acceleration(v, v0, None);
        if frac < 1.0 {
            prop_assert!(a > 0.0, "below v0 must accelerate: {a}");
        } else if frac > 1.0 {
            prop_assert!(a < 0.0, "above v0 must brake: {a}");
        }
    }

    /// Inside the minimum bumper gap `s0` the model always brakes, at
    /// any speed: `s*/gap > 1` dominates the free term.
    #[test]
    fn idm_brakes_inside_minimum_gap(
        v in 0.0f64..40.0,
        v0 in 1.0f64..40.0,
        gap_frac in 0.05f64..0.95,
        v_leader in 0.0f64..40.0,
    ) {
        let idm = IdmParams::default();
        let gap = idm.s0 * gap_frac;
        let a = idm.acceleration(v, v0, Some((gap, v_leader)));
        prop_assert!(a < 0.0, "gap {gap} < s0 {} must brake: {a}", idm.s0);
    }

    /// Per-second straight-line displacement never exceeds the clamped
    /// speed ceiling (`desired * 1.2` m in one second): no teleports,
    /// for arbitrary worlds.
    #[test]
    fn displacement_bounded_by_speed_ceiling(net_seed in 0u64..50, sim_seed in 0u64..50) {
        let mut nrng = StdRng::seed_from_u64(net_seed);
        let net = RoadNetwork::synthetic_city(&CityParams::small_area(), &mut nrng);
        let mut rng = StdRng::seed_from_u64(sim_seed);
        let mut sim = TrafficSim::new(&net, MobilityConfig::small(15), &mut rng);
        for _ in 0..10 {
            let before = sim.positions();
            sim.step(&mut rng);
            let after = sim.states();
            for (a, s) in before.iter().zip(&after) {
                let ceiling = s.desired_speed * 1.2 + 1e-9;
                prop_assert!(
                    a.distance(&s.pos) <= ceiling,
                    "moved {} m in 1 s, ceiling {ceiling}",
                    a.distance(&s.pos)
                );
            }
        }
    }

    /// Label stability: repro lines and bench columns embed these.
    #[test]
    fn labels_are_stable(v in 1.0f64..200.0) {
        prop_assert_eq!(SpeedScenario::Fixed(v).label(), format!("{v:.0}km/h"));
        prop_assert_eq!(SpeedScenario::Mix.label(), "Mix");
    }
}

/// The same `(net_seed, sim_seed)` replayed on the main thread and on
/// worker threads — at two different concurrency levels — produces the
/// identical trace down to the `f64` bits. The scenario harness's
/// `--seed` repro lines are only honest if this holds.
#[test]
fn step_trace_is_deterministic_across_thread_counts() {
    let reference = trace(3, 17, 12, 20);
    for threads in [2usize, 8] {
        let handles: Vec<_> = (0..threads)
            .map(|_| std::thread::spawn(|| trace(3, 17, 12, 20)))
            .collect();
        for h in handles {
            let got = h.join().expect("trace thread panicked");
            assert_eq!(reference.len(), got.len());
            for (step, (a, b)) in reference.iter().zip(&got).enumerate() {
                for (va, vb) in a.iter().zip(b) {
                    assert!(
                        va.0.x.to_bits() == vb.0.x.to_bits()
                            && va.0.y.to_bits() == vb.0.y.to_bits()
                            && va.1.to_bits() == vb.1.to_bits(),
                        "trace diverged at step {step}: {va:?} vs {vb:?}"
                    );
                }
            }
        }
    }
}

/// Distinct seeds actually change the world (the determinism test
/// above would pass vacuously if the seed were ignored).
#[test]
fn distinct_seeds_produce_distinct_traces() {
    let a = trace(3, 17, 12, 5);
    let b = trace(3, 18, 12, 5);
    assert!(
        a.iter()
            .zip(&b)
            .any(|(x, y)| x.iter().zip(y).any(|(p, q)| p.0.distance(&q.0) > 1.0)),
        "different sim seeds must yield different traffic"
    );
}
