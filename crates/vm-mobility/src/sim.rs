//! The per-second traffic simulation.

use crate::idm::IdmParams;
use rand::Rng;
use std::collections::HashMap;
use vm_geo::{NodeId, Point, RoadNetwork, Router};

/// Speed scenario of the paper's evaluation (Section 8, Fig. 21/22).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum SpeedScenario {
    /// Every vehicle's desired speed is the given km/h value (±10%).
    Fixed(f64),
    /// Desired speeds drawn uniformly from 30–70 km/h ("Mix").
    Mix,
}

impl SpeedScenario {
    /// Draw a desired speed in m/s for one vehicle.
    pub fn desired_speed_mps<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let kmh = match self {
            SpeedScenario::Fixed(v) => rng.gen_range(0.9 * v..=1.1 * v),
            SpeedScenario::Mix => rng.gen_range(30.0..=70.0),
        };
        kmh / 3.6
    }

    /// Scenario label as used in the paper's figures.
    pub fn label(&self) -> String {
        match self {
            SpeedScenario::Fixed(v) => format!("{v:.0}km/h"),
            SpeedScenario::Mix => "Mix".to_string(),
        }
    }
}

/// Traffic simulation configuration.
#[derive(Clone, Copy, Debug)]
pub struct MobilityConfig {
    /// Number of simulated vehicles.
    pub vehicles: usize,
    /// Speed scenario.
    pub speed: SpeedScenario,
    /// IDM car-following parameters.
    pub idm: IdmParams,
}

impl MobilityConfig {
    /// Paper Section 6 small-scale setting (n vehicles, mixed speeds).
    pub fn small(n: usize) -> Self {
        MobilityConfig {
            vehicles: n,
            speed: SpeedScenario::Mix,
            idm: IdmParams::default(),
        }
    }

    /// Paper Section 8 large-scale setting (1000 vehicles).
    pub fn large(speed: SpeedScenario) -> Self {
        MobilityConfig {
            vehicles: 1000,
            speed,
            idm: IdmParams::default(),
        }
    }
}

/// Public snapshot of one vehicle.
#[derive(Clone, Copy, Debug)]
pub struct VehicleState {
    /// Current position.
    pub pos: Point,
    /// Current speed, m/s.
    pub speed: f64,
    /// Desired (free-flow) speed, m/s.
    pub desired_speed: f64,
}

struct Vehicle {
    route: Vec<NodeId>,
    leg: usize,   // traveling route[leg] -> route[leg+1]
    offset: f64,  // meters from route[leg]
    speed: f64,   // m/s
    desired: f64, // m/s
}

impl Vehicle {
    fn leg_len(&self, net: &RoadNetwork) -> f64 {
        net.pos(self.route[self.leg])
            .distance(&net.pos(self.route[self.leg + 1]))
    }

    fn position(&self, net: &RoadNetwork) -> Point {
        let a = net.pos(self.route[self.leg]);
        let b = net.pos(self.route[self.leg + 1]);
        let len = a.distance(&b);
        let t = if len > 0.0 {
            (self.offset / len).clamp(0.0, 1.0)
        } else {
            0.0
        };
        a.lerp(&b, t)
    }
}

/// A running traffic simulation over a road network.
pub struct TrafficSim<'a> {
    net: &'a RoadNetwork,
    cfg: MobilityConfig,
    vehicles: Vec<Vehicle>,
    time_s: u64,
}

impl<'a> TrafficSim<'a> {
    /// Spawn `cfg.vehicles` vehicles at random nodes with random trips.
    pub fn new<R: Rng + ?Sized>(net: &'a RoadNetwork, cfg: MobilityConfig, rng: &mut R) -> Self {
        assert!(net.node_count() >= 2, "network too small");
        let router = Router::new(net);
        let mut vehicles = Vec::with_capacity(cfg.vehicles);
        while vehicles.len() < cfg.vehicles {
            let origin = net.random_node(rng);
            let Some(route) = new_trip(net, &router, origin, rng) else {
                continue;
            };
            let desired = cfg.speed.desired_speed_mps(rng);
            let first_len = net.pos(route[0]).distance(&net.pos(route[1]));
            vehicles.push(Vehicle {
                offset: rng.gen_range(0.0..first_len.max(1.0)).min(first_len),
                route,
                leg: 0,
                speed: desired * rng.gen_range(0.5..1.0),
                desired,
            });
        }
        TrafficSim {
            net,
            cfg,
            vehicles,
            time_s: 0,
        }
    }

    /// Seconds simulated so far.
    pub fn time_s(&self) -> u64 {
        self.time_s
    }

    /// Number of vehicles.
    pub fn len(&self) -> usize {
        self.vehicles.len()
    }

    /// True iff the simulation has no vehicles.
    pub fn is_empty(&self) -> bool {
        self.vehicles.is_empty()
    }

    /// Current positions of all vehicles (indexed by vehicle id).
    pub fn positions(&self) -> Vec<Point> {
        self.vehicles.iter().map(|v| v.position(self.net)).collect()
    }

    /// Current state snapshots of all vehicles.
    pub fn states(&self) -> Vec<VehicleState> {
        self.vehicles
            .iter()
            .map(|v| VehicleState {
                pos: v.position(self.net),
                speed: v.speed,
                desired_speed: v.desired,
            })
            .collect()
    }

    /// Advance the simulation by one second.
    pub fn step<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        let dt = 1.0;
        // Group vehicles by directed leg so each can find its leader.
        let mut on_leg: HashMap<(u32, u32), Vec<(usize, f64)>> = HashMap::new();
        for (i, v) in self.vehicles.iter().enumerate() {
            let key = (v.route[v.leg].0, v.route[v.leg + 1].0);
            on_leg.entry(key).or_default().push((i, v.offset));
        }
        let mut leaders: Vec<Option<(f64, f64)>> = vec![None; self.vehicles.len()];
        for group in on_leg.values_mut() {
            group.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal));
            for w in group.windows(2) {
                let (follower, f_off) = w[0];
                let (leader, l_off) = w[1];
                leaders[follower] = Some((l_off - f_off, self.vehicles[leader].speed));
            }
        }
        let router = Router::new(self.net);
        #[allow(clippy::needless_range_loop)] // i indexes two vecs with mutation
        for i in 0..self.vehicles.len() {
            let (accel, desired, speed) = {
                let v = &self.vehicles[i];
                (
                    self.cfg.idm.acceleration(v.speed, v.desired, leaders[i]),
                    v.desired,
                    v.speed,
                )
            };
            let new_speed = (speed + accel * dt).clamp(0.0, desired * 1.2);
            let v = &mut self.vehicles[i];
            v.speed = new_speed;
            v.offset += new_speed * dt;
            // Advance across legs; start a fresh trip when the route ends.
            loop {
                let leg_len = self.vehicles[i].leg_len(self.net);
                if self.vehicles[i].offset < leg_len {
                    break;
                }
                self.vehicles[i].offset -= leg_len;
                self.vehicles[i].leg += 1;
                if self.vehicles[i].leg + 1 >= self.vehicles[i].route.len() {
                    let last = *self.vehicles[i].route.last().expect("non-empty route");
                    if let Some(route) = new_trip(self.net, &router, last, rng) {
                        self.vehicles[i].route = route;
                        self.vehicles[i].leg = 0;
                    } else {
                        // Stuck node (cannot happen on a connected net);
                        // restart the same route backwards.
                        self.vehicles[i].route.reverse();
                        self.vehicles[i].leg = 0;
                    }
                }
            }
        }
        self.time_s += 1;
    }
}

/// Plan a trip from `origin` to a random destination at least a few blocks
/// away; `None` only if the network is degenerate.
fn new_trip<R: Rng + ?Sized>(
    net: &RoadNetwork,
    router: &Router<'_>,
    origin: NodeId,
    rng: &mut R,
) -> Option<Vec<NodeId>> {
    for _ in 0..32 {
        let dest = net.random_node(rng);
        if dest == origin {
            continue;
        }
        if net.pos(dest).distance(&net.pos(origin)) < 500.0 {
            continue;
        }
        if let Some(route) = router.route(origin, dest) {
            if route.nodes.len() >= 2 {
                return Some(route.nodes);
            }
        }
    }
    // Fall back to any neighbor hop.
    let out = net.outgoing(origin);
    if out.is_empty() {
        return None;
    }
    let e = net.edge(out[rng.gen_range(0..out.len())]);
    Some(vec![e.from, e.to])
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use vm_geo::CityParams;

    fn city(seed: u64) -> RoadNetwork {
        let mut rng = StdRng::seed_from_u64(seed);
        RoadNetwork::synthetic_city(&CityParams::small_area(), &mut rng)
    }

    #[test]
    fn vehicles_spawn_on_roads() {
        let net = city(1);
        let mut rng = StdRng::seed_from_u64(2);
        let sim = TrafficSim::new(&net, MobilityConfig::small(50), &mut rng);
        assert_eq!(sim.len(), 50);
        let (min, max) = net.bounds();
        for p in sim.positions() {
            assert!(p.x >= min.x - 1.0 && p.x <= max.x + 1.0);
            assert!(p.y >= min.y - 1.0 && p.y <= max.y + 1.0);
        }
    }

    #[test]
    fn vehicles_move_over_time() {
        let net = city(3);
        let mut rng = StdRng::seed_from_u64(4);
        let mut sim = TrafficSim::new(&net, MobilityConfig::small(30), &mut rng);
        let before = sim.positions();
        for _ in 0..30 {
            sim.step(&mut rng);
        }
        let after = sim.positions();
        let moved = before
            .iter()
            .zip(&after)
            .filter(|(a, b)| a.distance(b) > 10.0)
            .count();
        assert!(moved > 20, "most vehicles should have moved: {moved}/30");
        assert_eq!(sim.time_s(), 30);
    }

    #[test]
    fn per_second_displacement_bounded_by_speed() {
        let net = city(5);
        let mut rng = StdRng::seed_from_u64(6);
        let cfg = MobilityConfig {
            vehicles: 40,
            speed: SpeedScenario::Fixed(50.0),
            idm: IdmParams::default(),
        };
        let mut sim = TrafficSim::new(&net, cfg, &mut rng);
        for _ in 0..20 {
            let before = sim.positions();
            sim.step(&mut rng);
            let after = sim.positions();
            for (a, b) in before.iter().zip(&after) {
                // Straight-line displacement can't exceed distance driven:
                // max desired 55 km/h * 1.2 ≈ 18.3 m/s.
                assert!(a.distance(b) <= 19.0, "teleport: {}", a.distance(b));
            }
        }
    }

    #[test]
    fn speed_scenarios_scale_average_speed() {
        let net = city(7);
        let mut rng = StdRng::seed_from_u64(8);
        let avg_speed = |scenario: SpeedScenario, rng: &mut StdRng| {
            let cfg = MobilityConfig {
                vehicles: 60,
                speed: scenario,
                idm: IdmParams::default(),
            };
            let mut sim = TrafficSim::new(&net, cfg, rng);
            for _ in 0..60 {
                sim.step(rng);
            }
            let states = sim.states();
            states.iter().map(|s| s.speed).sum::<f64>() / states.len() as f64
        };
        let slow = avg_speed(SpeedScenario::Fixed(30.0), &mut rng);
        let fast = avg_speed(SpeedScenario::Fixed(70.0), &mut rng);
        assert!(
            fast > slow * 1.4,
            "70 km/h fleet ({fast:.1} m/s) should be much faster than 30 km/h fleet ({slow:.1} m/s)"
        );
    }

    #[test]
    fn desired_speed_draws_match_scenario() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..100 {
            let v = SpeedScenario::Fixed(50.0).desired_speed_mps(&mut rng);
            assert!((12.0..=15.5).contains(&v), "50km/h ±10% in m/s: {v}");
            let m = SpeedScenario::Mix.desired_speed_mps(&mut rng);
            assert!((8.0..=19.5).contains(&m), "mix in m/s: {m}");
        }
    }

    #[test]
    fn labels() {
        assert_eq!(SpeedScenario::Fixed(50.0).label(), "50km/h");
        assert_eq!(SpeedScenario::Mix.label(), "Mix");
    }

    #[test]
    fn long_run_remains_stable() {
        let net = city(10);
        let mut rng = StdRng::seed_from_u64(11);
        let mut sim = TrafficSim::new(&net, MobilityConfig::small(20), &mut rng);
        for _ in 0..600 {
            sim.step(&mut rng);
        }
        for s in sim.states() {
            assert!(s.speed.is_finite() && s.speed >= 0.0);
            assert!(s.pos.x.is_finite() && s.pos.y.is_finite());
        }
    }
}
