//! Intelligent Driver Model (Treiber et al.) car-following law.
//!
//! The IDM produces realistic speed traces — smooth approach to the desired
//! speed on free road, graceful braking behind a leader — which is what the
//! contact-time and density statistics of the paper's evaluation depend on.

/// IDM parameters (urban driving defaults).
#[derive(Clone, Copy, Debug)]
pub struct IdmParams {
    /// Maximum acceleration, m/s².
    pub a_max: f64,
    /// Comfortable deceleration, m/s².
    pub b_comfort: f64,
    /// Minimum bumper-to-bumper gap, m.
    pub s0: f64,
    /// Desired time headway, s.
    pub headway: f64,
    /// Acceleration exponent.
    pub delta: f64,
}

impl Default for IdmParams {
    fn default() -> Self {
        IdmParams {
            a_max: 1.5,
            b_comfort: 2.0,
            s0: 2.0,
            headway: 1.5,
            delta: 4.0,
        }
    }
}

impl IdmParams {
    /// Acceleration for a vehicle at speed `v` with desired speed `v0`,
    /// following a leader `gap` meters ahead moving at `v_leader`
    /// (`None` for free road).
    pub fn acceleration(&self, v: f64, v0: f64, leader: Option<(f64, f64)>) -> f64 {
        let v0 = v0.max(0.1);
        let free = 1.0 - (v / v0).powf(self.delta);
        let interaction = match leader {
            None => 0.0,
            Some((gap, v_leader)) => {
                let gap = gap.max(0.01);
                let dv = v - v_leader;
                let s_star = self.s0
                    + (v * self.headway + v * dv / (2.0 * (self.a_max * self.b_comfort).sqrt()))
                        .max(0.0);
                (s_star / gap).powi(2)
            }
        };
        self.a_max * (free - interaction)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accelerates_on_free_road_below_desired_speed() {
        let idm = IdmParams::default();
        assert!(idm.acceleration(5.0, 14.0, None) > 0.0);
    }

    #[test]
    fn holds_desired_speed_on_free_road() {
        let idm = IdmParams::default();
        let a = idm.acceleration(14.0, 14.0, None);
        assert!(a.abs() < 1e-9, "at v0 the free term vanishes: {a}");
    }

    #[test]
    fn decelerates_above_desired_speed() {
        let idm = IdmParams::default();
        assert!(idm.acceleration(20.0, 14.0, None) < 0.0);
    }

    #[test]
    fn brakes_behind_close_leader() {
        let idm = IdmParams::default();
        let a = idm.acceleration(14.0, 14.0, Some((5.0, 0.0)));
        assert!(a < -2.0, "should brake hard: {a}");
    }

    #[test]
    fn distant_leader_barely_matters() {
        let idm = IdmParams::default();
        let free = idm.acceleration(10.0, 14.0, None);
        let with_far_leader = idm.acceleration(10.0, 14.0, Some((500.0, 10.0)));
        assert!((free - with_far_leader).abs() < 0.05);
    }

    #[test]
    fn converges_to_equilibrium_gap() {
        // Two-car platoon: follower settles to a stable gap behind a
        // constant-speed leader.
        let idm = IdmParams::default();
        let v_leader = 10.0;
        let mut v = 0.0;
        let mut gap = 100.0;
        for _ in 0..600 {
            let a = idm.acceleration(v, 15.0, Some((gap, v_leader)));
            let dt = 0.5;
            let v_new = (v + a * dt).max(0.0);
            gap += (v_leader - v) * dt;
            v = v_new;
            assert!(gap > 0.0, "follower must not crash into leader");
        }
        assert!((v - v_leader).abs() < 0.3, "speed matched: {v}");
        let s_star = idm.s0 + v_leader * idm.headway;
        assert!(
            (gap - s_star).abs() < 3.0,
            "gap {gap} near equilibrium {s_star}"
        );
    }
}
