//! Vehicular traffic simulation — the SUMO substitute.
//!
//! The paper's large-scale evaluation (Section 8) drives 1000 vehicles from
//! SUMO traces over a Seoul street map; Section 6 uses 50–200 vehicles in a
//! 4×4 km² area. This crate produces equivalent per-second position traces:
//! vehicles follow shortest-path trips over a [`vm_geo::RoadNetwork`],
//! regulated by an Intelligent-Driver-Model (IDM) car-following law, under
//! the paper's speed scenarios (30 / 50 / 70 km/h and mixed).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod idm;
pub mod sim;

pub use idm::IdmParams;
pub use sim::{MobilityConfig, SpeedScenario, TrafficSim, VehicleState};
