//! # vm-scenario — city-in-a-box workloads
//!
//! A scenario-driven workload generator for the ViewMap stack. Each
//! named scenario composes the simulation crates (road networks from
//! `vm-geo`, IDM car-following from `vm-mobility`, DSRC witnessing
//! from `vm-radio`, protocol rounds from `vm-sim`, adversaries from
//! `viewmap-core::attack`) into a deterministic world, drives it over
//! the **real wire** (`VmClient` → `vm-service` → durable
//! [`vm_store::PersistentServer`]), and checks a scenario-specific
//! assertion matrix against an in-process oracle plus the `vm-obs`
//! telemetry snapshot.
//!
//! Every failure prints a copy-pasteable repro line:
//!
//! ```text
//! cargo run --release -p vm-scenario -- --scenario sybil-flood --seed 17
//! ```
//!
//! The catalog lives in [`catalog::Scenario`]; world generation in
//! [`world`]; the driver and assertion matrix in [`harness`].

#![forbid(unsafe_code)]

pub mod catalog;
pub mod harness;
pub mod world;

pub use catalog::Scenario;
pub use harness::{run_seed, RunReport};
