//! The scenario driver: one seeded run of a named workload over the
//! real wire (`VmClient` → `vm-service` → durable `ViewMapServer`),
//! checked against an in-process oracle and the telemetry snapshot.
//!
//! # Determinism
//!
//! World generation is a pure function of `(scenario, seed)`; the
//! driver is a synchronous client that settles each op before issuing
//! the next, so per-minute accepted order equals issue order no matter
//! how the wire behaves (including behind the rural chaos proxy, whose
//! fault mix is degraded-but-loss-free). The oracle — an in-process
//! [`ViewMapServer`] fed exactly the accepted operations — must then
//! match the served system bit for bit.

use crate::catalog::Scenario;
use crate::world::{attack_world, reward_world, sim_world, AttackSpec, SimWorld};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::cell::RefCell;
use std::path::PathBuf;
use std::sync::{Arc, Barrier};
use std::time::Duration;
use viewmap_core::attack::lemma2_bound;
use viewmap_core::server::ViewMapServer;
use viewmap_core::solicit::VideoUpload;
use viewmap_core::types::{MinuteId, VpId};
use viewmap_core::viewmap::{Site, ViewmapConfig};
use viewmap_core::vp::StoredVp;
use viewmap_core::{reward::Wallet, trustrank};
use vm_bench::worlds::viewmap_checksum;
use vm_obs::Registry;
use vm_service::proto::ErrorCode;
use vm_service::{ClientConfig, ClientError, ServiceConfig, VmClient, VmService};
use vm_sim::SimConfig;
use vm_store::{PersistentServer, StoreConfig};
use vm_vopr::{ChaosProxy, WireFaults};

/// RSA modulus width for the non-reward scenarios (smallest accepted:
/// they exercise ingest and investigation, not key strength).
const KEY_BITS: usize = 64;

/// Modulus width for `redemption-storm`, which runs real blind
/// signatures and redemptions.
const REWARD_KEY_BITS: usize = 512;

/// Cap on attempts for one op to settle before the run is wedged.
const MAX_ATTEMPTS: usize = 50;

macro_rules! ensure {
    ($cond:expr, $($arg:tt)*) => {
        // `if cond {} else { .. }` rather than `if !cond` so float
        // comparisons at call sites don't trip neg_cmp_op_on_partial_ord.
        if $cond {
        } else {
            return Err(format!($($arg)*));
        }
    };
}

thread_local! {
    /// The most recently opened server's telemetry registry, kept so a
    /// failing run can dump the final snapshot beside the repro line.
    static LAST_OBS: RefCell<Option<Arc<Registry>>> = const { RefCell::new(None) };
}

fn track_obs(obs: &Arc<Registry>) {
    LAST_OBS.with(|cell| *cell.borrow_mut() = Some(Arc::clone(obs)));
}

/// Journal events a failure report carries.
const FAILURE_JOURNAL_TAIL: usize = 16;

fn failure_telemetry() -> String {
    LAST_OBS.with(|cell| {
        let borrow = cell.borrow();
        let Some(obs) = borrow.as_ref() else {
            return String::new();
        };
        let mut out = String::from("\n--- metrics snapshot at failure ---\n");
        out.push_str(&obs.snapshot().render_text());
        out.push_str("--- journal tail ---\n");
        let tail = obs.journal().tail(FAILURE_JOURNAL_TAIL);
        if tail.is_empty() {
            out.push_str("(no events)\n");
        }
        for event in tail {
            out.push_str(&format!("{event}\n"));
        }
        out
    })
}

/// What one seeded run did — counters for reporting, not assertions.
#[derive(Clone, Debug)]
pub struct RunReport {
    /// The scenario that ran.
    pub scenario: Scenario,
    /// The seed that parameterized it.
    pub seed: u64,
    /// Wire ops settled.
    pub ops: usize,
    /// Reconnect-and-retry cycles forced by the wire.
    pub retries: usize,
    /// VPs resident at the end of the run.
    pub final_vps: usize,
    /// Scenario-specific highlight (edges, bound, cash …).
    pub note: String,
}

struct TempDir(PathBuf);

impl TempDir {
    fn new(scenario: Scenario, seed: u64) -> TempDir {
        let dir = std::env::temp_dir().join(format!(
            "vm_scenario_{}_{}_{}",
            scenario.name(),
            seed,
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        TempDir(dir)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

enum Settled {
    Accepted,
    Present,
}

fn settle_submit(
    client: &mut VmClient,
    vp: &StoredVp,
    retries: &mut usize,
) -> Result<Settled, String> {
    for _ in 0..MAX_ATTEMPTS {
        match client.submit(vp) {
            Ok(()) => return Ok(Settled::Accepted),
            Err(ClientError::Remote(ErrorCode::Duplicate, _)) => return Ok(Settled::Present),
            Err(ClientError::Remote(code, detail)) => {
                return Err(format!("unexpected rejection {code}: {detail}"))
            }
            Err(_) => {
                *retries += 1;
                let _ = client.reconnect_with_backoff(5, Duration::from_millis(2));
            }
        }
    }
    Err(format!("submit of {:?} never settled", vp.id))
}

fn settle_investigate(
    client: &mut VmClient,
    minute: MinuteId,
    site: Site,
    retries: &mut usize,
) -> Result<Vec<VpId>, String> {
    for _ in 0..MAX_ATTEMPTS {
        match client.investigate(minute, site) {
            Ok(ids) => return Ok(ids),
            Err(ClientError::Remote(code, detail)) => {
                return Err(format!("investigation rejected {code}: {detail}"))
            }
            Err(_) => {
                *retries += 1;
                let _ = client.reconnect_with_backoff(5, Duration::from_millis(2));
            }
        }
    }
    Err(format!("investigation of {minute:?} never settled"))
}

/// A fresh in-process oracle holding exactly the given minutes, each
/// replayed in accepted order with trusted flags preserved.
fn build_oracle(
    minutes: &[(MinuteId, &[StoredVp])],
    key_bits: usize,
    cfg: ViewmapConfig,
) -> Result<ViewMapServer, String> {
    let mut orng = StdRng::seed_from_u64(0xACE5);
    let oracle = ViewMapServer::new(&mut orng, key_bits, cfg);
    for (minute, vps) in minutes {
        let results = oracle.submit_replay_batch(vps.to_vec());
        ensure!(
            results.iter().all(|r| r.is_ok()),
            "oracle replay rejected a VP in {minute:?}: {results:?}"
        );
    }
    Ok(oracle)
}

/// Assert `srv` and `oracle` are observably the same system over the
/// given minutes, and that both systems' telemetry agrees with the
/// state it describes (stored − evicted == resident).
fn check_equivalence(
    srv: &ViewMapServer,
    oracle: &ViewMapServer,
    minutes: &[MinuteId],
    site: Site,
    label: &str,
) -> Result<(), String> {
    ensure!(
        srv.stored_minutes() == minutes,
        "{label}: server minutes {:?}, expected {minutes:?}",
        srv.stored_minutes()
    );
    ensure!(
        oracle.stored_minutes() == minutes,
        "{label}: oracle minutes {:?}",
        oracle.stored_minutes()
    );
    ensure!(
        srv.state_digest() == oracle.state_digest(),
        "{label}: state digest diverged"
    );
    ensure!(
        srv.total_vps() == oracle.total_vps(),
        "{label}: total {} != oracle {}",
        srv.total_vps(),
        oracle.total_vps()
    );
    for &minute in minutes {
        let s_ids: Vec<VpId> = srv.minute_vps(minute).iter().map(|vp| vp.id).collect();
        let o_ids: Vec<VpId> = oracle.minute_vps(minute).iter().map(|vp| vp.id).collect();
        ensure!(
            s_ids == o_ids,
            "{label}: bucket order diverged at {minute:?}"
        );
        ensure!(
            viewmap_checksum(&srv.build_viewmap(minute, site))
                == viewmap_checksum(&oracle.build_viewmap(minute, site)),
            "{label}: viewmap checksum diverged at {minute:?}"
        );
        ensure!(
            srv.investigate(minute, site) == oracle.investigate(minute, site),
            "{label}: investigation diverged at {minute:?}"
        );
    }
    ensure!(
        srv.solicitation_board() == oracle.solicitation_board(),
        "{label}: solicitation boards diverged"
    );
    for (who, side) in [("server", srv), ("oracle", oracle)] {
        let snap = side.obs().snapshot();
        let stored = snap.counter("vm_core_vps_stored_total").unwrap_or(0) as i64;
        let evicted = snap.counter("vm_core_vps_evicted_total").unwrap_or(0) as i64;
        ensure!(
            stored - evicted == side.total_vps() as i64,
            "{label}: {who} counters say {stored} stored - {evicted} evicted, \
             but {} VPs are resident",
            side.total_vps()
        );
    }
    Ok(())
}

/// Everything a live scenario server needs: the durable cell, its wire
/// front-end, the optional chaos proxy, and a connected client.
struct Rig {
    srv: Arc<ViewMapServer>,
    handle: vm_service::ServiceHandle,
    /// Held for its Drop (kills the proxy thread); never read.
    #[allow(dead_code)]
    proxy: Option<ChaosProxy>,
    client: VmClient,
    #[allow(dead_code)]
    tmp: TempDir,
}

fn rig(
    scenario: Scenario,
    seed: u64,
    key_bits: usize,
    faults: Option<WireFaults>,
    workers: usize,
) -> Result<Rig, String> {
    let tmp = TempDir::new(scenario, seed);
    let mut srv_rng = StdRng::seed_from_u64(seed ^ 0x5eed);
    let (srv, recovery) = ViewMapServer::open(
        &mut srv_rng,
        key_bits,
        ViewmapConfig::default(),
        &tmp.0,
        StoreConfig::default(),
    )
    .map_err(|e| format!("open server: {e}"))?;
    track_obs(srv.obs());
    ensure!(
        recovery.records == 0,
        "fresh store replayed {} records",
        recovery.records
    );
    let srv = Arc::new(srv);
    let handle = VmService::spawn(
        Arc::clone(&srv),
        "127.0.0.1:0",
        ServiceConfig {
            workers,
            ..ServiceConfig::default()
        },
    )
    .map_err(|e| format!("spawn service: {e}"))?;
    let proxy = match faults {
        Some(f) => Some(
            ChaosProxy::spawn(handle.addr(), seed ^ 0xcafe, f)
                .map_err(|e| format!("spawn proxy: {e}"))?,
        ),
        None => None,
    };
    let addr = proxy.as_ref().map_or(handle.addr(), |p| p.addr());
    let client = VmClient::connect_with(
        addr,
        ClientConfig {
            read_timeout: Some(Duration::from_secs(5)),
            write_timeout: Some(Duration::from_secs(5)),
            backoff_seed: Some(seed ^ 0xbac0_0ff5),
        },
    )
    .map_err(|e| format!("connect: {e}"))?;
    Ok(Rig {
        srv,
        handle,
        proxy,
        client,
        tmp,
    })
}

impl Rig {
    /// Anchor each minute in-process (authority channel), then drive
    /// the rest of the population over the wire in order.
    fn drive_world(&mut self, world: &SimWorld, report: &mut RunReport) -> Result<(), String> {
        for mw in &world.minutes {
            let r = self.srv.submit_trusted(mw.vps[0].clone());
            ensure!(r.is_ok(), "anchor rejected: {r:?}");
        }
        for mw in &world.minutes {
            for vp in &mw.vps[1..] {
                match settle_submit(&mut self.client, vp, &mut report.retries)? {
                    Settled::Accepted => {}
                    Settled::Present => {
                        return Err(format!("fresh VP {:?} reported as duplicate", vp.id))
                    }
                }
                report.ops += 1;
            }
        }
        Ok(())
    }

    /// Wire investigations vs the oracle for every listed minute.
    fn check_wire_investigations(
        &mut self,
        oracle: &ViewMapServer,
        minutes: &[MinuteId],
        site: Site,
        report: &mut RunReport,
    ) -> Result<(), String> {
        for &minute in minutes {
            let ids = settle_investigate(&mut self.client, minute, site, &mut report.retries)?;
            ensure!(
                ids == oracle.investigate(minute, site),
                "wire investigation diverged at {minute:?}"
            );
            report.ops += 1;
        }
        Ok(())
    }
}

/// Run one `(scenario, seed)` workload end to end. `Err` carries a
/// human-readable reason prefixed with a copy-pasteable repro line.
pub fn run_seed(scenario: Scenario, seed: u64) -> Result<RunReport, String> {
    let mut report = RunReport {
        scenario,
        seed,
        ops: 0,
        retries: 0,
        final_vps: 0,
        note: String::new(),
    };
    let inner = match scenario {
        Scenario::RushHour => run_rush_hour(seed, &mut report),
        Scenario::RuralSparse => run_rural_sparse(seed, &mut report),
        Scenario::RetentionChurn => run_retention_churn(seed, &mut report),
        Scenario::SybilFlood => run_sybil(seed, &mut report, false),
        Scenario::ForgedTrajectory => run_sybil(seed, &mut report, true),
        Scenario::RedemptionStorm => run_redemption_storm(seed, &mut report),
    };
    match inner {
        Ok(()) => Ok(report),
        Err(e) => Err(format!(
            "[scenario={} seed={seed}] {e} — reproduce: \
             cargo run --release -p vm-scenario -- --scenario {} --seed {seed}{}",
            scenario.name(),
            scenario.name(),
            failure_telemetry()
        )),
    }
}

/// The world population of one sim minute, `(MinuteId, vps)` pairs for
/// the oracle.
fn oracle_minutes(world: &SimWorld) -> Vec<(MinuteId, &[StoredVp])> {
    world
        .minutes
        .iter()
        .enumerate()
        .map(|(m, mw)| (MinuteId(m as u64), mw.vps.as_slice()))
        .collect()
}

fn minute_ids(world: &SimWorld) -> Vec<MinuteId> {
    (0..world.minutes.len() as u64).map(MinuteId).collect()
}

// ── rush-hour ────────────────────────────────────────────────────────

/// Dense downtown platoon: the viewmap must blow up with edges, and the
/// served system must equal the oracle.
fn run_rush_hour(seed: u64, report: &mut RunReport) -> Result<(), String> {
    let cfg = SimConfig::rush_hour(28, 2);
    let world = sim_world(&cfg, seed);
    let mut rig = rig(Scenario::RushHour, seed, KEY_BITS, None, 2)?;
    rig.drive_world(&world, report)?;

    let oracle = build_oracle(&oracle_minutes(&world), KEY_BITS, ViewmapConfig::default())?;
    let minutes = minute_ids(&world);
    rig.check_wire_investigations(&oracle, &minutes, world.site, report)?;
    check_equivalence(&rig.srv, &oracle, &minutes, world.site, "rush-hour")?;

    // Edge blowup: every VP of the platoon is a member, and witnessing
    // density makes edges outnumber members.
    let mut total_edges = 0usize;
    for (m, mw) in world.minutes.iter().enumerate() {
        let vm = rig.srv.build_viewmap(MinuteId(m as u64), world.site);
        ensure!(
            vm.len() == mw.vps.len(),
            "minute {m}: viewmap has {} members, population is {}",
            vm.len(),
            mw.vps.len()
        );
        ensure!(
            mw.mean_neighbors >= 2.0,
            "minute {m}: platoon mean neighbor count {:.2} is not dense",
            mw.mean_neighbors
        );
        ensure!(
            vm.edge_count() > vm.len(),
            "minute {m}: {} edges over {} members is no blowup",
            vm.edge_count(),
            vm.len()
        );
        total_edges += vm.edge_count();
    }

    // Telemetry invariant: the stored counter equals exactly what the
    // run submitted (anchors + wire ops), nothing dropped or doubled.
    let submitted: usize = world.minutes.iter().map(|mw| mw.vps.len()).sum();
    let snap = rig.srv.obs().snapshot();
    ensure!(
        snap.counter("vm_core_vps_stored_total") == Some(submitted as u64),
        "stored counter {:?} != {submitted} submitted",
        snap.counter("vm_core_vps_stored_total")
    );
    report.final_vps = rig.srv.total_vps();
    report.note = format!("{total_edges} edges over {submitted} VPs");
    Ok(())
}

// ── rural-sparse ─────────────────────────────────────────────────────

/// A handful of vehicles on country blocks behind a degraded link:
/// linkage starves, guards carry the anonymity set, and the wire chaos
/// must not perturb the final state.
fn run_rural_sparse(seed: u64, report: &mut RunReport) -> Result<(), String> {
    let cfg = SimConfig::rural_sparse(8, 2);
    let world = sim_world(&cfg, seed);
    let mut rig = rig(
        Scenario::RuralSparse,
        seed,
        KEY_BITS,
        Some(WireFaults::rural_link()),
        2,
    )?;
    rig.drive_world(&world, report)?;

    let oracle = build_oracle(&oracle_minutes(&world), KEY_BITS, ViewmapConfig::default())?;
    let minutes = minute_ids(&world);
    rig.check_wire_investigations(&oracle, &minutes, world.site, report)?;
    check_equivalence(&rig.srv, &oracle, &minutes, world.site, "rural-sparse")?;

    // Linkage starvation: sparse witnessing, and at least one isolated
    // member somewhere (no viewlink at all).
    let mut isolated = 0usize;
    for (m, mw) in world.minutes.iter().enumerate() {
        ensure!(
            mw.mean_neighbors < 4.0,
            "minute {m}: mean neighbors {:.2} is not sparse",
            mw.mean_neighbors
        );
        let vm = rig.srv.build_viewmap(MinuteId(m as u64), world.site);
        isolated += vm.adj.iter().filter(|nbrs| nbrs.is_empty()).count();
        // Guard accounting: the population is exactly the actual VPs
        // plus the guards the sim created for this minute.
        ensure!(
            mw.vps.len() == cfg.vehicles + mw.guards,
            "minute {m}: population {} != {} vehicles + {} guards",
            mw.vps.len(),
            cfg.vehicles,
            mw.guards
        );
    }
    ensure!(
        isolated > 0,
        "rural world has no linkage starvation (every member linked)"
    );
    // Guard share respects the α=0.1 knob: guards are a minority.
    ensure!(
        world.guard_share < 0.5,
        "guard share {:.2} exceeds plausibility for alpha=0.1",
        world.guard_share
    );
    let snap = rig.srv.obs().snapshot();
    let submitted: usize = world.minutes.iter().map(|mw| mw.vps.len()).sum();
    ensure!(
        snap.counter("vm_core_vps_stored_total") == Some(submitted as u64),
        "stored counter {:?} != {submitted} submitted through chaos",
        snap.counter("vm_core_vps_stored_total")
    );
    report.final_vps = rig.srv.total_vps();
    report.note = format!(
        "{isolated} isolated members, guard share {:.2}, {} retries",
        world.guard_share, report.retries
    );
    Ok(())
}

// ── retention-churn ──────────────────────────────────────────────────

/// Multi-minute ingest against progressive eviction sweeps: retention
/// is exact, maintained graphs die with their minute, and survivors
/// keep maintained-vs-cold checksum equality throughout.
fn run_retention_churn(seed: u64, report: &mut RunReport) -> Result<(), String> {
    let minutes_total = 4usize;
    let cfg = SimConfig {
        keep_vps: true,
        ..SimConfig::small(8, minutes_total as u64)
    };
    let world = sim_world(&cfg, seed);
    let mut rig = rig(Scenario::RetentionChurn, seed, KEY_BITS, None, 2)?;
    rig.drive_world(&world, report)?;

    let oracle = build_oracle(&oracle_minutes(&world), KEY_BITS, ViewmapConfig::default())?;
    let minutes = minute_ids(&world);
    rig.check_wire_investigations(&oracle, &minutes, world.site, report)?;
    check_equivalence(&rig.srv, &oracle, &minutes, world.site, "pre-churn")?;

    // Materialize a maintained graph per minute so the sweeps actually
    // have live incremental state to invalidate.
    for &minute in &minutes {
        ensure!(
            viewmap_checksum(&rig.srv.build_viewmap_maintained(minute, world.site))
                == viewmap_checksum(&rig.srv.build_viewmap(minute, world.site)),
            "maintained viewmap diverged from cold build at {minute:?}"
        );
    }

    let mut evicted_total = 0usize;
    for cutoff in 1..minutes_total {
        let dropped = rig.srv.evict_minutes_before(MinuteId(cutoff as u64));
        let expect = world.minutes[cutoff - 1].vps.len();
        ensure!(
            dropped == expect,
            "sweep {cutoff}: evicted {dropped} VPs, minute held {expect}"
        );
        evicted_total += dropped;
        for m in 0..cutoff {
            ensure!(
                !rig.srv.has_maintained(MinuteId(m as u64)),
                "maintained graph outlived evicted minute {m}"
            );
        }
        // Survivors: maintained and cold builds still agree, and the
        // whole system equals an oracle fed only the surviving minutes.
        let survivors: Vec<MinuteId> = (cutoff as u64..minutes_total as u64)
            .map(MinuteId)
            .collect();
        for &minute in &survivors {
            ensure!(
                viewmap_checksum(&rig.srv.build_viewmap_maintained(minute, world.site))
                    == viewmap_checksum(&rig.srv.build_viewmap(minute, world.site)),
                "post-sweep maintained viewmap diverged at {minute:?}"
            );
        }
        // The sweep oracle replays the full history — ingest, the
        // investigations (which populate the solicitation board), and
        // the same eviction — so every observable converges, board
        // included.
        let sweep_oracle =
            build_oracle(&oracle_minutes(&world), KEY_BITS, ViewmapConfig::default())?;
        for &minute in &minutes {
            sweep_oracle.investigate(minute, world.site);
        }
        let odropped = sweep_oracle.evict_minutes_before(MinuteId(cutoff as u64));
        ensure!(
            odropped == evicted_total,
            "sweep {cutoff}: oracle evicted {odropped}, server has swept {evicted_total}"
        );
        check_equivalence(
            &rig.srv,
            &sweep_oracle,
            &survivors,
            world.site,
            &format!("post-sweep {cutoff}"),
        )?;
    }

    // Telemetry: the eviction counter tracked every sweep exactly.
    let snap = rig.srv.obs().snapshot();
    ensure!(
        snap.counter("vm_core_vps_evicted_total") == Some(evicted_total as u64),
        "evicted counter {:?} != {evicted_total} swept",
        snap.counter("vm_core_vps_evicted_total")
    );
    report.final_vps = rig.srv.total_vps();
    report.note = format!(
        "{evicted_total} VPs evicted over {} sweeps",
        minutes_total - 1
    );
    Ok(())
}

// ── sybil-flood / forged-trajectory ──────────────────────────────────

/// Mount a Sybil attack over the wire and hold TrustRank to the paper's
/// Lemma 2: total fake trust is bounded by what flows through the
/// attackers' legitimate VPs.
fn run_sybil(seed: u64, report: &mut RunReport, aimed: bool) -> Result<(), String> {
    let scenario = if aimed {
        Scenario::ForgedTrajectory
    } else {
        Scenario::SybilFlood
    };
    let spec = if aimed {
        AttackSpec {
            vehicles: 24,
            n_attackers: 1,
            attacker_hops: (3, 6),
            fakes: 40,
            aim_at_site: true,
        }
    } else {
        AttackSpec {
            vehicles: 24,
            n_attackers: 3,
            attacker_hops: (2, 4),
            fakes: 36,
            aim_at_site: false,
        }
    };
    let world = attack_world(&spec, seed);
    ensure!(
        !world.attacker_ids.is_empty() && !world.fake_ids.is_empty(),
        "attack world failed to place attackers or fakes"
    );
    let mut rig = rig(scenario, seed, KEY_BITS, None, 2)?;

    // Anchor, then everything — honest, attacker, and fake VPs — over
    // the wire like any anonymous upload.
    let r = rig.srv.submit_trusted(world.vps[0].clone());
    ensure!(r.is_ok(), "anchor rejected: {r:?}");
    for vp in &world.vps[1..] {
        match settle_submit(&mut rig.client, vp, &mut report.retries)? {
            Settled::Accepted => {}
            Settled::Present => return Err(format!("fresh VP {:?} deduplicated", vp.id)),
        }
        report.ops += 1;
    }

    let minute = MinuteId(0);
    let oracle = build_oracle(
        &[(minute, world.vps.as_slice())],
        KEY_BITS,
        ViewmapConfig::default(),
    )?;
    rig.check_wire_investigations(&oracle, &[minute], world.wide_site, report)?;
    check_equivalence(
        &rig.srv,
        &oracle,
        &[minute],
        world.wide_site,
        scenario.name(),
    )?;

    // The bound: build the server's own viewmap over everything, score
    // it, and hold the fakes to Lemma 2.
    let vm = rig.srv.build_viewmap(minute, world.wide_site);
    ensure!(
        vm.len() == world.vps.len(),
        "wide viewmap admitted {} of {} VPs",
        vm.len(),
        world.vps.len()
    );
    let scores = trustrank::trust_scores(&vm.adj, &vm.trusted, trustrank::DAMPING, 1e-10);
    let mut attackers = Vec::new();
    let mut is_fake = vec![false; vm.len()];
    for (i, vp) in vm.vps.iter().enumerate() {
        if world.attacker_ids.contains(&vp.id) {
            attackers.push(i);
        }
        is_fake[i] = world.fake_ids.contains(&vp.id);
    }
    ensure!(
        attackers.len() == world.attacker_ids.len(),
        "viewmap lost attacker VPs"
    );
    // Fakes must never link to honest VPs (their Blooms cannot be
    // countersigned): verified on the engine-built adjacency.
    for (i, nbrs) in vm.adj.iter().enumerate() {
        if is_fake[i] {
            for &j in nbrs {
                ensure!(
                    is_fake[j] || attackers.contains(&j),
                    "fake VP linked to an honest VP in the served viewmap"
                );
            }
        }
    }
    let fake_total: f64 = (0..vm.len())
        .filter(|&i| is_fake[i])
        .map(|i| scores[i])
        .sum();
    let bound = lemma2_bound(&vm.adj, &scores, &attackers, &is_fake);
    ensure!(
        fake_total <= bound + 1e-9,
        "lemma 2 violated: fake trust {fake_total:.6} > bound {bound:.6}"
    );
    // Non-degeneracy: the attack must actually reach the trust flow —
    // a zero bound means the attackers were disconnected and the run
    // proved nothing.
    ensure!(
        bound > 0.0,
        "degenerate attack: lemma bound is zero (attackers unreachable from trust seeds)"
    );

    if aimed {
        // The forged trajectory runs through the site, yet the
        // top-scored site VP must remain honest.
        let (v, _) = vm.verify(&world.site, &ViewmapConfig::default());
        let top = v.top.ok_or("forged-trajectory site is empty")?;
        ensure!(
            !is_fake[top],
            "a forged VP won the site: top {:?}",
            vm.vps[top].id
        );
    }

    report.final_vps = rig.srv.total_vps();
    report.note = format!(
        "fake trust {fake_total:.4} <= bound {bound:.4} ({} fakes, {} attackers)",
        world.fake_ids.len(),
        attackers.len()
    );
    Ok(())
}

// ── redemption-storm ─────────────────────────────────────────────────

/// Many concurrent reward sessions racing the same board entries and
/// the same cash over the wire: exactly one blind-sign winner per VP,
/// exactly one redemption per unit, and telemetry that accounts for
/// every race loser.
fn run_redemption_storm(seed: u64, report: &mut RunReport) -> Result<(), String> {
    const UNITS: usize = 2;
    const SESSIONS: usize = 4;
    let recordings = reward_world(5, seed);
    let mut rig = rig(
        Scenario::RedemptionStorm,
        seed,
        REWARD_KEY_BITS,
        None,
        SESSIONS,
    )?;

    // Ingest the recordings (anchor in-process, rest over the wire).
    let r = rig.srv.submit_trusted(recordings[0].vp.clone());
    ensure!(r.is_ok(), "anchor rejected: {r:?}");
    for rec in &recordings[1..] {
        match settle_submit(&mut rig.client, &rec.vp, &mut report.retries)? {
            Settled::Accepted => {}
            Settled::Present => return Err(format!("fresh VP {:?} deduplicated", rec.vp.id)),
        }
        report.ops += 1;
    }

    // One solicited upload end to end: the vision-crate chunks must
    // validate against the VD cascade over the wire.
    let sample = &recordings[1];
    rig.client
        .solicit(sample.vp.id)
        .map_err(|e| format!("solicit: {e}"))?;
    rig.client
        .upload_video(&VideoUpload {
            vp_id: sample.vp.id,
            chunks: sample.chunks.clone(),
        })
        .map_err(|e| format!("upload_video: {e}"))?;
    report.ops += 2;

    // Human review: every recording earns UNITS of cash.
    for rec in &recordings {
        rig.srv.post_reward(rec.vp.id, UNITS);
    }

    // The storm: SESSIONS concurrent wire clients race every claim.
    let addr = rig.handle.addr();
    let pk = rig.srv.public_key().clone();
    let barrier = Arc::new(Barrier::new(SESSIONS));
    let mut handles = Vec::new();
    for t in 0..SESSIONS {
        let barrier = Arc::clone(&barrier);
        let pk = pk.clone();
        let claims: Vec<(VpId, [u8; 8])> = recordings
            .iter()
            .map(|rec| (rec.vp.id, rec.secret))
            .collect();
        handles.push(std::thread::spawn(
            move || -> Result<(usize, Vec<viewmap_core::reward::Cash>), String> {
                let mut client = VmClient::connect_with(
                    addr,
                    ClientConfig {
                        read_timeout: Some(Duration::from_secs(10)),
                        write_timeout: Some(Duration::from_secs(10)),
                        backoff_seed: Some(seed ^ (t as u64) << 8),
                    },
                )
                .map_err(|e| format!("storm connect: {e}"))?;
                let mut rng = StdRng::seed_from_u64(seed ^ 0x0ca5_4000 ^ (t as u64) << 32);
                let mut won = 0usize;
                let mut cash = Vec::new();
                barrier.wait();
                for (vp_id, secret) in claims {
                    let mut wallet = Wallet::new();
                    let (pending, blinded) = wallet.prepare(&mut rng, &pk, UNITS);
                    match client.blind_sign(vp_id, &secret, &blinded) {
                        Ok(signed) => {
                            if wallet.accept_signed(&pk, pending, &signed) != UNITS {
                                return Err("wallet rejected signatures".into());
                            }
                            won += 1;
                            cash.append(&mut wallet.cash);
                        }
                        Err(ClientError::Remote(ErrorCode::NotOnBoard, _)) => {}
                        Err(e) => return Err(format!("blind_sign: {e}")),
                    }
                }
                Ok((won, cash))
            },
        ));
    }
    let mut all_cash = Vec::new();
    let mut winners = 0usize;
    for h in handles {
        let (won, cash) = h
            .join()
            .map_err(|_| "storm thread panicked".to_string())?
            .map_err(|e| format!("storm session: {e}"))?;
        winners += won;
        all_cash.extend(cash);
    }
    ensure!(
        winners == recordings.len(),
        "{winners} blind-sign winners for {} rewards (exactly one each expected)",
        recordings.len()
    );
    ensure!(
        all_cash.len() == recordings.len() * UNITS,
        "storm minted {} cash units, expected {}",
        all_cash.len(),
        recordings.len() * UNITS
    );
    report.ops += recordings.len() * SESSIONS;

    // Redemption: SESSIONS clients race every unit; each must clear
    // exactly once, with every loser seeing DoubleSpend.
    let all_cash = Arc::new(all_cash);
    let barrier = Arc::new(Barrier::new(SESSIONS));
    let mut handles = Vec::new();
    for t in 0..SESSIONS {
        let barrier = Arc::clone(&barrier);
        let cash = Arc::clone(&all_cash);
        handles.push(std::thread::spawn(move || -> Result<Vec<bool>, String> {
            let mut client = VmClient::connect_with(
                addr,
                ClientConfig {
                    read_timeout: Some(Duration::from_secs(10)),
                    write_timeout: Some(Duration::from_secs(10)),
                    backoff_seed: Some(seed ^ 0xdead ^ (t as u64) << 8),
                },
            )
            .map_err(|e| format!("redeem connect: {e}"))?;
            barrier.wait();
            let mut oks = Vec::with_capacity(cash.len());
            for c in cash.iter() {
                match client.redeem(c) {
                    Ok(()) => oks.push(true),
                    Err(ClientError::Remote(ErrorCode::DoubleSpend, _)) => oks.push(false),
                    Err(e) => return Err(format!("redeem: {e}")),
                }
            }
            Ok(oks)
        }));
    }
    let mut per_unit = vec![0usize; all_cash.len()];
    for h in handles {
        let oks = h
            .join()
            .map_err(|_| "redeem thread panicked".to_string())?
            .map_err(|e| format!("redeem session: {e}"))?;
        for (u, ok) in oks.into_iter().enumerate() {
            per_unit[u] += usize::from(ok);
        }
    }
    ensure!(
        per_unit.iter().all(|&n| n == 1),
        "some cash unit redeemed {:?} times (exactly once expected)",
        per_unit
    );
    report.ops += all_cash.len() * SESSIONS;
    ensure!(
        rig.srv.spent_cash() == all_cash.len(),
        "ledger holds {} units, {} were redeemed",
        rig.srv.spent_cash(),
        all_cash.len()
    );

    // Telemetry: signatures, redemptions, and double-spend rejections
    // all account exactly for the storm.
    let snap = rig.srv.obs().snapshot();
    ensure!(
        snap.counter("vm_core_blind_signatures_total") == Some((recordings.len() * UNITS) as u64),
        "signature counter {:?} != {}",
        snap.counter("vm_core_blind_signatures_total"),
        recordings.len() * UNITS
    );
    ensure!(
        snap.counter("vm_core_cash_redeemed_total") == Some(all_cash.len() as u64),
        "redeemed counter {:?} != {}",
        snap.counter("vm_core_cash_redeemed_total"),
        all_cash.len()
    );
    ensure!(
        snap.counter("vm_core_cash_double_spend_total")
            == Some((all_cash.len() * (SESSIONS - 1)) as u64),
        "double-spend counter {:?} != {}",
        snap.counter("vm_core_cash_double_spend_total"),
        all_cash.len() * (SESSIONS - 1)
    );

    // The storm must not have perturbed the stored state: equivalence
    // against an oracle fed the same ingest.
    let world: Vec<StoredVp> = recordings.iter().map(|r| r.vp.clone()).collect();
    let mut oracle_world = world.clone();
    oracle_world[0].trusted = true;
    let oracle = build_oracle(
        &[(MinuteId(0), oracle_world.as_slice())],
        REWARD_KEY_BITS,
        ViewmapConfig::default(),
    )?;
    check_equivalence_reward(&rig.srv, &oracle, sample.vp.id)?;

    report.final_vps = rig.srv.total_vps();
    report.note = format!(
        "{} rewards, {} cash units, {} double-spends bounced",
        recordings.len(),
        all_cash.len(),
        all_cash.len() * (SESSIONS - 1)
    );
    Ok(())
}

/// Reward-scenario equivalence: stored state identical, modulo the
/// solicitation this run itself performed over the wire.
fn check_equivalence_reward(
    srv: &ViewMapServer,
    oracle: &ViewMapServer,
    solicited: VpId,
) -> Result<(), String> {
    let minutes = [MinuteId(0)];
    ensure!(
        srv.stored_minutes() == minutes,
        "storm: server minutes {:?}",
        srv.stored_minutes()
    );
    ensure!(
        srv.state_digest() == oracle.state_digest(),
        "storm: state digest diverged"
    );
    ensure!(
        srv.total_vps() == oracle.total_vps(),
        "storm: totals diverged"
    );
    for &minute in &minutes {
        let s_ids: Vec<VpId> = srv.minute_vps(minute).iter().map(|vp| vp.id).collect();
        let o_ids: Vec<VpId> = oracle.minute_vps(minute).iter().map(|vp| vp.id).collect();
        ensure!(s_ids == o_ids, "storm: bucket order diverged at {minute:?}");
    }
    // The wire solicitation is the only board difference.
    ensure!(
        srv.solicitation_board() == vec![solicited],
        "storm: unexpected solicitation board {:?}",
        srv.solicitation_board()
    );
    for (who, side) in [("server", srv), ("oracle", oracle)] {
        let snap = side.obs().snapshot();
        let stored = snap.counter("vm_core_vps_stored_total").unwrap_or(0) as i64;
        let evicted = snap.counter("vm_core_vps_evicted_total").unwrap_or(0) as i64;
        ensure!(
            stored - evicted == side.total_vps() as i64,
            "storm: {who} telemetry disagrees with resident state"
        );
    }
    Ok(())
}
