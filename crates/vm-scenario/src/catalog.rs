//! The scenario catalog: every named workload the generator can drive.

/// A named end-to-end workload. Each scenario composes the simulation
/// stack differently and carries its own assertion matrix; all of them
/// are deterministic in `(scenario, seed)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Scenario {
    /// Dense platoon crawling through downtown: maximal mutual
    /// witnessing, viewmap edge blowup, oracle equivalence.
    RushHour,
    /// A handful of vehicles on long country blocks behind a degraded
    /// wire: linkage starvation and guard-node behavior.
    RuralSparse,
    /// Multi-minute ingest against progressive `evict_minutes_before`
    /// sweeps: retention exactness and maintained-viewmap equivalence.
    RetentionChurn,
    /// Several colluding attackers each launching fake-VP rays at the
    /// investigation site: TrustRank resilience within `lemma2_bound`.
    SybilFlood,
    /// One distant attacker forging a single long fake trajectory
    /// through the site: the paper's Fig. 20 attack, bound-checked.
    ForgedTrajectory,
    /// Many concurrent reward sessions racing blind-sign and redeem:
    /// exactly-once issuance and double-spend defense under contention.
    RedemptionStorm,
}

impl Scenario {
    /// Every scenario, in catalog order.
    pub fn all() -> [Scenario; 6] {
        [
            Scenario::RushHour,
            Scenario::RuralSparse,
            Scenario::RetentionChurn,
            Scenario::SybilFlood,
            Scenario::ForgedTrajectory,
            Scenario::RedemptionStorm,
        ]
    }

    /// The CLI name (`--scenario <name>`).
    pub fn name(&self) -> &'static str {
        match self {
            Scenario::RushHour => "rush-hour",
            Scenario::RuralSparse => "rural-sparse",
            Scenario::RetentionChurn => "retention-churn",
            Scenario::SybilFlood => "sybil-flood",
            Scenario::ForgedTrajectory => "forged-trajectory",
            Scenario::RedemptionStorm => "redemption-storm",
        }
    }

    /// Parse a CLI name.
    pub fn from_name(name: &str) -> Option<Scenario> {
        Self::all().into_iter().find(|s| s.name() == name)
    }

    /// One-line description for `--help` and reports.
    pub fn description(&self) -> &'static str {
        match self {
            Scenario::RushHour => {
                "dense downtown platoon: viewmap edge blowup + oracle equivalence"
            }
            Scenario::RuralSparse => {
                "sparse rural traffic over a degraded link: linkage starvation + guards"
            }
            Scenario::RetentionChurn => {
                "multi-minute ingest vs eviction sweeps: maintained-viewmap equivalence"
            }
            Scenario::SybilFlood => "colluding Sybil attackers: fake trust bounded by lemma 2",
            Scenario::ForgedTrajectory => {
                "one forged trajectory through the site: bounded + honest top"
            }
            Scenario::RedemptionStorm => "concurrent blind-sign/redeem sessions: exactly-once cash",
        }
    }
}

impl std::fmt::Display for Scenario {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip() {
        for s in Scenario::all() {
            assert_eq!(Scenario::from_name(s.name()), Some(s));
        }
        assert_eq!(Scenario::from_name("nope"), None);
    }

    #[test]
    fn names_are_stable() {
        // Repro lines embed these names; renaming breaks replayability.
        let names: Vec<&str> = Scenario::all().iter().map(|s| s.name()).collect();
        assert_eq!(
            names,
            [
                "rush-hour",
                "rural-sparse",
                "retention-churn",
                "sybil-flood",
                "forged-trajectory",
                "redemption-storm"
            ]
        );
    }
}
