//! Deterministic world generators: materialize the simulation stack
//! (IDM traffic over synthetic road networks, radio witnessing,
//! adversary injection) into stored VPs a harness can drive over the
//! real wire protocol.
//!
//! Every generator is a pure function of its `(config, seed)` inputs —
//! the same pair always yields bit-identical VPs, which is what lets a
//! failing run be replayed from nothing but the printed repro line.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashSet;
use viewmap_core::bloom::BloomFilter;
use viewmap_core::types::{GeoPos, VpId, SECONDS_PER_VP};
use viewmap_core::vd::ViewDigest;
use viewmap_core::viewmap::Site;
use viewmap_core::vp::{StoredVp, VpBuilder, VpKind};
use vm_geo::{CityParams, RoadNetwork};
use vm_mobility::{MobilityConfig, SpeedScenario, TrafficSim};
use vm_sim::{run_protocol_sim, SimConfig};
use vm_vision::SyntheticScene;

/// Witnessing radius for the hand-wired attack worlds, metres. Below
/// the 400 m DSRC radius so every Bloom-wired pair also passes the
/// viewmap engine's geometric precondition.
pub const LINK_RADIUS_M: f64 = 350.0;

/// One simulated minute ready for the wire: `vps[0]` is the trusted
/// anchor (authority channel), the rest go through the client in order.
pub struct MinuteWorld {
    /// All VPs of the minute; index 0 carries the trusted flag.
    pub vps: Vec<StoredVp>,
    /// Guard VPs among them (wire-indistinguishable from actuals).
    pub guards: usize,
    /// Mean per-vehicle witnessed-neighbor count this minute.
    pub mean_neighbors: f64,
}

/// A protocol-sim world: per-minute VP populations plus the site that
/// covers the whole city.
pub struct SimWorld {
    /// One entry per simulated minute.
    pub minutes: Vec<MinuteWorld>,
    /// Investigation site covering the entire area.
    pub site: Site,
    /// Fraction of uploads that were guard VPs.
    pub guard_share: f64,
}

/// Run the full protocol simulation (mobility + radio + guards +
/// anonymous upload) and reorder each minute so a deterministic actual
/// VP leads as the trusted anchor.
pub fn sim_world(cfg: &SimConfig, seed: u64) -> SimWorld {
    let out = run_protocol_sim(cfg, seed);
    let minutes = out
        .minutes
        .into_iter()
        .map(|rec| {
            let vps = rec.vps.expect("sim_world requires cfg.keep_vps");
            let anchor = rec.actual_idx[0];
            let mut ordered = Vec::with_capacity(vps.len());
            for (i, mut vp) in vps.into_iter().enumerate() {
                if i == anchor {
                    vp.trusted = true;
                    ordered.insert(0, vp);
                } else {
                    ordered.push(vp);
                }
            }
            MinuteWorld {
                vps: ordered,
                guards: rec.guard_count,
                mean_neighbors: rec.mean_neighbors,
            }
        })
        .collect();
    let total = out.actual_vps + out.guard_vps;
    SimWorld {
        minutes,
        site: Site {
            center: GeoPos::new(cfg.city.width_m / 2.0, cfg.city.height_m / 2.0),
            radius_m: 1_000_000.0,
        },
        guard_share: if total == 0 {
            0.0
        } else {
            out.guard_vps as f64 / total as f64
        },
    }
}

/// Parameters for the adversarial worlds.
pub struct AttackSpec {
    /// Honest vehicles driven by the traffic simulator.
    pub vehicles: usize,
    /// Colluding attacker vehicles (chosen among the honest drivers).
    pub n_attackers: usize,
    /// Desired hop distance of attackers from the trusted anchor.
    pub attacker_hops: (usize, usize),
    /// Total fake-VP budget across all rays.
    pub fakes: usize,
    /// Aim rays at the investigation site (forged trajectory) instead
    /// of blanketing random headings (Sybil flood).
    pub aim_at_site: bool,
}

/// A minute-zero world with a seeded Sybil attack wired into it.
pub struct AttackWorld {
    /// All VPs: honest (index 0 trusted), then fakes. Attacker VPs are
    /// honest-positioned members of the honest prefix.
    pub vps: Vec<StoredVp>,
    /// Ids of the forged VPs.
    pub fake_ids: HashSet<VpId>,
    /// Ids of the attackers' legitimate VPs.
    pub attacker_ids: HashSet<VpId>,
    /// The small investigation site the attack targets.
    pub site: Site,
    /// A site covering everything (equivalence checks).
    pub wide_site: Site,
}

/// Drive `spec.vehicles` IDM vehicles over a synthetic city for one
/// minute, derive witnessing links from per-second proximity, then
/// mount the attack: attacker vehicles at the requested hop distance
/// emit rays of fake VPs whose fabricated Blooms link only to the
/// colluders (the paper's constraint: honest VPs never countersign a
/// fake trajectory).
pub fn attack_world(spec: &AttackSpec, seed: u64) -> AttackWorld {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5CE7_A77C);
    // A tight downtown core: with DSRC-range witnessing over ~1.6 km,
    // the honest graph stays one well-connected component, so trust
    // actually flows from the anchor through the attackers into their
    // fakes — the bound being checked is then non-degenerate.
    let city = CityParams {
        width_m: 1_600.0,
        height_m: 1_600.0,
        block_m: 200.0,
        jitter: 0.15,
        keep_link_prob: 0.95,
        diagonals: 1,
    };
    let net = RoadNetwork::synthetic_city(&city, &mut rng);
    let mut sim = TrafficSim::new(
        &net,
        MobilityConfig {
            vehicles: spec.vehicles,
            speed: SpeedScenario::Mix,
            ..MobilityConfig::small(spec.vehicles)
        },
        &mut rng,
    );

    // Per-vehicle per-second trajectories.
    let secs = SECONDS_PER_VP as usize;
    let mut traj: Vec<Vec<GeoPos>> = vec![Vec::with_capacity(secs); spec.vehicles];
    for _ in 0..secs {
        sim.step(&mut rng);
        for (v, p) in sim.positions().iter().enumerate() {
            traj[v].push(GeoPos::new(p.x, p.y));
        }
    }

    // Witnessing: a pair links iff co-located within radio range at any
    // second of the minute.
    let witnessed =
        |a: &[GeoPos], b: &[GeoPos]| a.iter().zip(b).any(|(p, q)| p.distance(q) <= LINK_RADIUS_M);
    let n = spec.vehicles;
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
    for i in 0..n {
        for j in i + 1..n {
            if witnessed(&traj[i], &traj[j]) {
                adj[i].push(j);
                adj[j].push(i);
            }
        }
    }

    // Anchor the trust seed inside the largest witnessing component:
    // a vehicle that spent the minute isolated can't seed trust to
    // anyone, which would leave the Lemma 2 bound degenerately zero.
    let mut comp = vec![usize::MAX; n];
    let mut comp_size: Vec<usize> = Vec::new();
    for s in 0..n {
        if comp[s] != usize::MAX {
            continue;
        }
        let c = comp_size.len();
        let mut size = 0usize;
        let mut stack = vec![s];
        comp[s] = c;
        while let Some(u) = stack.pop() {
            size += 1;
            for &v in &adj[u] {
                if comp[v] == usize::MAX {
                    comp[v] = c;
                    stack.push(v);
                }
            }
        }
        comp_size.push(size);
    }
    let best = (0..comp_size.len())
        .max_by_key(|&c| comp_size[c])
        .expect("at least one vehicle");
    if comp[0] != best {
        let anchor = (0..n)
            .find(|&i| comp[i] == best)
            .expect("nonempty component");
        traj.swap(0, anchor);
        for nbrs in adj.iter_mut() {
            for v in nbrs.iter_mut() {
                *v = match *v {
                    0 => anchor,
                    x if x == anchor => 0,
                    x => x,
                };
            }
        }
        adj.swap(0, anchor);
    }

    // BFS hop distances from the trusted anchor (vehicle 0).
    let mut hops = vec![usize::MAX; n];
    hops[0] = 0;
    let mut q = std::collections::VecDeque::from([0usize]);
    while let Some(u) = q.pop_front() {
        for &v in &adj[u] {
            if hops[v] == usize::MAX {
                hops[v] = hops[u] + 1;
                q.push_back(v);
            }
        }
    }

    // The investigation site: centered on a well-connected honest
    // vehicle near the anchor, so honest trust is present in the site.
    let host = (0..n)
        .filter(|&i| (1..=2).contains(&hops[i]))
        .max_by_key(|&i| adj[i].len())
        .unwrap_or(0);
    let site = Site {
        center: traj[host][secs / 2],
        radius_m: 300.0,
    };

    // Attackers: reachable vehicles in the hop bucket, away from the
    // site (they cannot predict it); fall back to the farthest-hop
    // vehicles if the bucket is empty.
    let far_from_site = |i: usize| {
        traj[i]
            .iter()
            .all(|p| p.distance(&site.center) > site.radius_m + LINK_RADIUS_M)
    };
    let mut candidates: Vec<usize> = (1..n)
        .filter(|&i| {
            hops[i] != usize::MAX
                && hops[i] >= spec.attacker_hops.0
                && hops[i] <= spec.attacker_hops.1
                && far_from_site(i)
        })
        .collect();
    if candidates.len() < spec.n_attackers {
        let mut by_hop: Vec<usize> = (1..n)
            .filter(|&i| hops[i] != usize::MAX && far_from_site(i))
            .collect();
        by_hop.sort_by_key(|&i| std::cmp::Reverse(hops[i]));
        candidates = by_hop;
    }
    if candidates.len() < spec.n_attackers {
        // Sparse witnessing can leave the anchor's component tiny; any
        // vehicle works, preferring reachable ones at high hop counts
        // (an unreachable attacker scores ~0 and degenerates the bound).
        candidates = (1..n).collect();
        candidates.sort_by_key(|&i| (hops[i] == usize::MAX, std::cmp::Reverse(hops[i])));
    }
    let mut attackers = Vec::new();
    while attackers.len() < spec.n_attackers && !candidates.is_empty() {
        let k = rng.gen_range(0..candidates.len());
        attackers.push(candidates.swap_remove(k));
    }

    // Fake positions: rays from each attacker's trajectory end, spaced
    // inside radio range so the chain passes the engine's geometric
    // precondition. `fake_adj` indexes fakes from `n` upward.
    let spacing = LINK_RADIUS_M * 0.8;
    let mut pos_fake: Vec<GeoPos> = Vec::new();
    let mut all_edges: Vec<(usize, usize)> = Vec::new();
    for (i, nbrs) in adj.iter().enumerate() {
        for &j in nbrs {
            if j > i {
                all_edges.push((i, j));
            }
        }
    }
    let mut budget = spec.fakes;
    let mut ai = 0usize;
    while budget > 0 && !attackers.is_empty() {
        let a = attackers[ai % attackers.len()];
        ai += 1;
        let start = *traj[a].last().expect("non-empty trajectory");
        let mut heading: f64 = if spec.aim_at_site {
            (site.center.y - start.y).atan2(site.center.x - start.x)
        } else {
            rng.gen_range(0.0..std::f64::consts::TAU)
        };
        let ray_len = if spec.aim_at_site {
            // Long enough to pass through the site.
            ((start.distance(&site.center) + 2.0 * site.radius_m) / spacing).ceil() as usize
        } else {
            (spec.fakes / (attackers.len() * 2).max(1)).clamp(3, 40)
        }
        .min(budget);
        let mut prev = a; // honest index of the ray's root
        let mut p = start;
        for _ in 0..ray_len {
            heading += rng.gen_range(-0.08..0.08);
            p = GeoPos::new(p.x + spacing * heading.cos(), p.y + spacing * heading.sin());
            let idx = n + pos_fake.len();
            pos_fake.push(p);
            all_edges.push((prev, idx));
            // Cross-links to recent colluding fakes in claimed range.
            let mut linked = 0;
            for (j, q) in pos_fake.iter().enumerate().rev().skip(1).take(60) {
                if q.distance(&p) <= LINK_RADIUS_M {
                    all_edges.push((n + j, idx));
                    linked += 1;
                    if linked >= 4 {
                        break;
                    }
                }
            }
            prev = idx;
            budget -= 1;
            if budget == 0 {
                break;
            }
        }
    }

    // Materialize VPs: honest trajectories as recorded, fakes parked at
    // their claimed positions. Ids first so Blooms can cross-reference.
    let total = n + pos_fake.len();
    let ids: Vec<VpId> = (0..total)
        .map(|_| VpId(vm_crypto::Digest16(rng.gen())))
        .collect();
    let mk_vds = |idx: usize, path: &dyn Fn(usize) -> GeoPos| -> Vec<ViewDigest> {
        (1..=SECONDS_PER_VP as u16)
            .map(|seq| ViewDigest {
                seq,
                flags: 0,
                time: seq as u64,
                loc: path(seq as usize - 1),
                file_size: seq as u64 * 1024,
                initial_loc: path(0),
                vp_id: ids[idx],
                hash: vm_crypto::Digest16(
                    StdRng::seed_from_u64(seed ^ ((idx as u64) << 20) ^ seq as u64).gen(),
                ),
            })
            .collect()
    };
    let vds: Vec<Vec<ViewDigest>> = (0..total)
        .map(|i| {
            if i < n {
                mk_vds(i, &|s| traj[i][s])
            } else {
                mk_vds(i, &|_| pos_fake[i - n])
            }
        })
        .collect();
    let mut blooms: Vec<BloomFilter> = (0..total).map(|_| BloomFilter::default()).collect();
    for &(a, b) in &all_edges {
        let last = SECONDS_PER_VP as usize - 1;
        blooms[a].insert(&vds[b][0].bloom_key());
        blooms[a].insert(&vds[b][last].bloom_key());
        blooms[b].insert(&vds[a][0].bloom_key());
        blooms[b].insert(&vds[a][last].bloom_key());
    }
    let mut vps: Vec<StoredVp> = Vec::with_capacity(total);
    for (i, (vd, bloom)) in vds.into_iter().zip(blooms).enumerate() {
        vps.push(StoredVp::new(ids[i], vd, bloom, i == 0));
    }

    AttackWorld {
        fake_ids: ids[n..].iter().copied().collect(),
        attacker_ids: attackers.iter().map(|&a| ids[a]).collect(),
        vps,
        site,
        wide_site: Site {
            center: GeoPos::new(city.width_m / 2.0, city.height_m / 2.0),
            radius_m: 1_000_000.0,
        },
    }
}

/// One rewardable recording: the VP, the owner's secret `Q_u`, and the
/// video chunks whose cascaded hashes the VDs commit to.
pub struct Recording {
    /// The stored VP (minute 0; index 0 of a [`reward_world`] is trusted).
    pub vp: StoredVp,
    /// Ownership secret for `claim_reward`.
    pub secret: [u8; 8],
    /// 60 one-second video chunks (synthetic dashcam frames).
    pub chunks: Vec<Vec<u8>>,
}

/// Build `n` independent recordings for the reward scenarios: each is a
/// real `VpBuilder` cascade over synthetic dashcam frames from the
/// vision crate, so solicited uploads validate end to end.
pub fn reward_world(n: usize, seed: u64) -> Vec<Recording> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x4E_4A_11);
    (0..n)
        .map(|i| {
            let scene = SyntheticScene::generate(&mut rng, 64, 48, 2);
            let origin = GeoPos::new(100.0 + i as f64 * 500.0, 200.0);
            let mut b = VpBuilder::new(&mut rng, 0, origin, VpKind::Actual);
            let mut chunks = Vec::with_capacity(SECONDS_PER_VP as usize);
            for s in 0..SECONDS_PER_VP {
                // Per-second frame: the scene with a rolling exposure
                // tweak, so every chunk (and hence VD hash) differs.
                let mut data = scene.frame.data.clone();
                for px in data.iter_mut().skip(s as usize % 7) {
                    *px = px.wrapping_add(s as u8);
                }
                let pos = GeoPos::new(origin.x + s as f64 * 8.0, origin.y);
                b.record_second(&data, pos);
                chunks.push(data);
            }
            let fin = b.finalize();
            let mut vp = fin.profile.into_stored();
            vp.trusted = i == 0;
            Recording {
                vp,
                secret: fin.secret,
                chunks,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sim_world_is_deterministic_and_anchored() {
        let cfg = SimConfig::rush_hour(10, 2);
        let a = sim_world(&cfg, 7);
        let b = sim_world(&cfg, 7);
        assert_eq!(a.minutes.len(), 2);
        for (ma, mb) in a.minutes.iter().zip(&b.minutes) {
            assert_eq!(ma.vps.len(), mb.vps.len());
            assert!(ma.vps[0].trusted && ma.vps[1..].iter().all(|vp| !vp.trusted));
            for (x, y) in ma.vps.iter().zip(&mb.vps) {
                assert_eq!(x.id, y.id, "same seed, same world");
            }
        }
    }

    #[test]
    fn attack_world_fakes_link_only_to_colluders() {
        let world = attack_world(
            &AttackSpec {
                vehicles: 20,
                n_attackers: 2,
                attacker_hops: (2, 4),
                fakes: 15,
                aim_at_site: false,
            },
            11,
        );
        assert_eq!(world.fake_ids.len(), 15);
        assert!(!world.attacker_ids.is_empty());
        // Fake blooms must never reference an honest VP outside the
        // colluding set: check via the engine's own two-way link test.
        let arcs: Vec<std::sync::Arc<StoredVp>> =
            world.vps.iter().cloned().map(std::sync::Arc::new).collect();
        let vm = viewmap_core::viewmap::Viewmap::build(
            &arcs,
            world.wide_site,
            viewmap_core::types::MinuteId(0),
            &viewmap_core::viewmap::ViewmapConfig::default(),
        );
        let controlled: HashSet<VpId> =
            world.fake_ids.union(&world.attacker_ids).copied().collect();
        for (i, vp) in vm.vps.iter().enumerate() {
            if world.fake_ids.contains(&vp.id) {
                for &j in &vm.adj[i] {
                    assert!(
                        controlled.contains(&vm.vps[j].id),
                        "fake linked to an honest VP"
                    );
                }
            }
        }
    }

    #[test]
    fn reward_world_chunks_validate() {
        let recs = reward_world(2, 3);
        assert!(recs[0].vp.trusted && !recs[1].vp.trusted);
        for rec in &recs {
            let upload = viewmap_core::solicit::VideoUpload {
                vp_id: rec.vp.id,
                chunks: rec.chunks.clone(),
            };
            viewmap_core::solicit::validate_upload(&rec.vp, &upload)
                .expect("recorded chunks must validate against the cascade");
            assert_eq!(VpId::from_secret(&rec.secret), rec.vp.id);
        }
    }
}
