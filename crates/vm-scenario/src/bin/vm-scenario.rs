//! CLI driver for the scenario workloads.
//!
//! ```text
//! vm-scenario --scenario all --seeds 3          # every scenario, seeds 0..3
//! vm-scenario --scenario sybil-flood --seed 17  # one exact repro
//! vm-scenario --list
//! ```

use std::process::ExitCode;
use vm_scenario::{run_seed, Scenario};

fn usage() -> ! {
    eprintln!(
        "usage: vm-scenario [--scenario NAME|all] [--seed N] [--seeds N] [--start N] [--list]\n\
         \n\
         --scenario NAME   one scenario by name, or `all` (default: all)\n\
         --seed N          run exactly seed N\n\
         --seeds N         run N consecutive seeds (default: 1)\n\
         --start N         first seed for --seeds (default: 0)\n\
         --list            print the catalog and exit"
    );
    std::process::exit(2);
}

fn main() -> ExitCode {
    let mut scenario_arg = String::from("all");
    let mut seed: Option<u64> = None;
    let mut seeds: u64 = 1;
    let mut start: u64 = 0;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| args.next().unwrap_or_else(|| usage_for(name));
        match arg.as_str() {
            "--scenario" => scenario_arg = value("--scenario"),
            "--seed" => seed = Some(parse(&value("--seed"))),
            "--seeds" => seeds = parse(&value("--seeds")),
            "--start" => start = parse(&value("--start")),
            "--list" => {
                for s in Scenario::all() {
                    println!("{:<18} {}", s.name(), s.description());
                }
                return ExitCode::SUCCESS;
            }
            _ => usage(),
        }
    }

    let selected: Vec<Scenario> = if scenario_arg == "all" {
        Scenario::all().to_vec()
    } else {
        match Scenario::from_name(&scenario_arg) {
            Some(s) => vec![s],
            None => {
                eprintln!("unknown scenario `{scenario_arg}` (try --list)");
                return ExitCode::from(2);
            }
        }
    };
    let seed_range: Vec<u64> = match seed {
        Some(s) => vec![s],
        None => (start..start + seeds).collect(),
    };

    let mut failures = 0usize;
    for scenario in &selected {
        for &seed in &seed_range {
            match run_seed(*scenario, seed) {
                Ok(report) => println!(
                    "ok   {:<18} seed={:<4} ops={:<5} retries={:<3} vps={:<4} {}",
                    report.scenario.name(),
                    report.seed,
                    report.ops,
                    report.retries,
                    report.final_vps,
                    report.note
                ),
                Err(e) => {
                    failures += 1;
                    eprintln!("FAIL {e}");
                }
            }
        }
    }
    if failures > 0 {
        eprintln!("{failures} scenario run(s) failed");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

fn parse(s: &str) -> u64 {
    s.parse().unwrap_or_else(|_| {
        eprintln!("not a number: {s}");
        std::process::exit(2);
    })
}

fn usage_for(name: &str) -> ! {
    eprintln!("{name} needs a value");
    usage()
}
