//! Times one full run of every scenario and splices the results into
//! `BENCH_investigate.json` as a top-level `"scenarios"` object with
//! one `scenario_<name>_ms` column per catalog entry, e.g.
//! `scenario_rush_hour_ms`. The CI python gate requires every column
//! to be present and > 0.
//!
//! The workspace has no JSON library (offline build), so the merge is
//! textual: any existing `"scenarios"` object is cut out, then the new
//! one is inserted before the file's closing brace. If the bench file
//! does not exist yet (scenario job running before the bench job), a
//! minimal document is created.
//!
//! * `VM_BENCH_OUT` — file to merge into (default `BENCH_investigate.json`).
//! * `VM_SCENARIO_BENCH_SEED` — seed to time (default 42).

use std::time::Instant;
use vm_scenario::{run_seed, Scenario};

fn main() {
    let path = std::env::var("VM_BENCH_OUT").unwrap_or_else(|_| "BENCH_investigate.json".into());
    let seed: u64 = std::env::var("VM_SCENARIO_BENCH_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(42);

    let mut columns = Vec::new();
    for scenario in Scenario::all() {
        let start = Instant::now();
        match run_seed(scenario, seed) {
            Ok(report) => {
                let ms = start.elapsed().as_secs_f64() * 1e3;
                println!(
                    "scenario {:<18} seed={seed} {ms:.1} ms ({} ops, {} vps)",
                    scenario.name(),
                    report.ops,
                    report.final_vps
                );
                columns.push((column_name(scenario), ms));
            }
            Err(e) => {
                eprintln!("FAIL {e}");
                std::process::exit(1);
            }
        }
    }

    let scenarios_json = render(&columns, seed);
    let merged = match std::fs::read_to_string(&path) {
        Ok(existing) => splice(&existing, &scenarios_json),
        Err(_) => format!("{{\n  \"bench\": \"investigate\",\n{scenarios_json}\n}}\n"),
    };
    std::fs::write(&path, merged).expect("write bench file");
    println!("wrote scenario columns to {path}");
}

/// `rush-hour` → `scenario_rush_hour_ms`.
fn column_name(scenario: Scenario) -> String {
    format!("scenario_{}_ms", scenario.name().replace('-', "_"))
}

fn render(columns: &[(String, f64)], seed: u64) -> String {
    let mut out = String::from("  \"scenarios\": {\n");
    out.push_str(&format!("    \"seed\": {seed},\n"));
    for (i, (name, ms)) in columns.iter().enumerate() {
        let comma = if i + 1 == columns.len() { "" } else { "," };
        out.push_str(&format!("    \"{name}\": {ms:.3}{comma}\n"));
    }
    out.push_str("  }");
    out
}

/// Insert (or replace) the `"scenarios"` object in an existing
/// document, keeping everything else byte-identical.
fn splice(existing: &str, scenarios_json: &str) -> String {
    let body = strip_scenarios(existing);
    let close = body.rfind('}').expect("bench file has no closing brace");
    let head = body[..close].trim_end();
    format!("{head},\n{scenarios_json}\n}}\n")
}

/// Remove a previous top-level `"scenarios": { ... }` entry (and the
/// comma that attached it) so repeated runs do not accumulate copies.
fn strip_scenarios(doc: &str) -> String {
    let Some(key) = doc.find("\"scenarios\"") else {
        return doc.to_string();
    };
    // Walk from the key's opening brace to its matching close.
    let open = doc[key..].find('{').expect("scenarios key without object") + key;
    let mut depth = 0usize;
    let mut end = open;
    for (i, c) in doc[open..].char_indices() {
        match c {
            '{' => depth += 1,
            '}' => {
                depth -= 1;
                if depth == 0 {
                    end = open + i + 1;
                    break;
                }
            }
            _ => {}
        }
    }
    // Swallow the separator comma: the one before the key if present,
    // else a trailing one after the object.
    let mut start = key;
    let before = doc[..key].trim_end();
    if before.ends_with(',') {
        start = before.len() - 1;
    } else if doc[end..].trim_start().starts_with(',') {
        end += doc[end..].find(',').unwrap() + 1;
    }
    format!("{}{}", &doc[..start], &doc[end..])
}
