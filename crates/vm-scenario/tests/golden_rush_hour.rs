//! Golden pin for the rush-hour world: seed 42 must reproduce this
//! exact topology forever. Any drift in the mobility model, the radio
//! witnessing, the sim protocol rounds, or the viewmap engine shows up
//! here as a diff against three constants.
//!
//! Release-only: the IDM sim under debug assertions is slow enough to
//! drag the default `cargo test` run (the threaded release CI matrix
//! picks it up automatically).

use viewmap_core::types::MinuteId;
use viewmap_core::viewmap::{Viewmap, ViewmapConfig};
use vm_bench::worlds::viewmap_checksum;
use vm_scenario::world::sim_world;
use vm_sim::SimConfig;

/// Pinned from a release run of `sim_world(rush_hour(12, 1), 42)`.
/// If a deliberate sim/engine change moves these, re-pin with:
/// `cargo test --release -p vm-scenario --test golden_rush_hour -- --nocapture`
const GOLDEN_MEMBERS: usize = 22;
const GOLDEN_EDGES: usize = 25;
const GOLDEN_CHECKSUM: u64 = 0x177f_08e5_022b_ccee;

#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "golden topology pin is release-only (debug sim is slow)"
)]
fn rush_hour_seed_42_topology_is_pinned() {
    let cfg = SimConfig::rush_hour(12, 1);
    let world = sim_world(&cfg, 42);
    assert_eq!(world.minutes.len(), 1);
    let arcs: Vec<std::sync::Arc<_>> = world.minutes[0]
        .vps
        .iter()
        .cloned()
        .map(std::sync::Arc::new)
        .collect();
    let vm = Viewmap::build(&arcs, world.site, MinuteId(0), &ViewmapConfig::default());
    let checksum = viewmap_checksum(&vm);
    println!(
        "golden rush-hour(12,1) seed 42: members={} edges={} checksum={:#018x}",
        vm.len(),
        vm.edge_count(),
        checksum
    );
    assert_eq!(vm.len(), GOLDEN_MEMBERS, "member count drifted");
    assert_eq!(vm.edge_count(), GOLDEN_EDGES, "edge count drifted");
    assert_eq!(checksum, GOLDEN_CHECKSUM, "viewmap checksum drifted");
}
