//! Adversarial integration tests: every cheating path the paper's threat
//! model (§3.2, §6.3) describes, exercised against the real server.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use viewmap::core::attack::{AttackConfig, GeometricParams, SyntheticViewmap};
use viewmap::core::bloom::BloomFilter;
use viewmap::core::guard::{create_guards, GuardConfig, StraightLine};
use viewmap::core::server::{SubmitError, ViewMapServer};
use viewmap::core::solicit::{UploadError, VideoUpload};
use viewmap::core::types::{GeoPos, SECONDS_PER_VP};
use viewmap::core::upload::AnonymousSubmission;
use viewmap::core::viewmap::ViewmapConfig;
use viewmap::core::vp::{exchange_minute, VpBuilder, VpKind};

fn server(seed: u64) -> ViewMapServer {
    let mut rng = StdRng::seed_from_u64(seed);
    ViewMapServer::new(&mut rng, 512, ViewmapConfig::default())
}

#[test]
fn bloom_poisoning_flood_is_rejected_at_submission() {
    // §6.3.2: attackers fabricate all-ones bit-arrays to claim
    // neighborship with everyone.
    let srv = server(1);
    let mut rng = StdRng::seed_from_u64(2);
    let mut b = VpBuilder::new(&mut rng, 0, GeoPos::new(0.0, 0.0), VpKind::Actual);
    for s in 0..SECONDS_PER_VP {
        b.record_second(b"x", GeoPos::new(s as f64, 0.0));
    }
    let mut vp = b.finalize().profile.into_stored();
    vp.bloom = BloomFilter::from_bytes(vec![0xff; 256], 8);
    assert_eq!(
        srv.submit(AnonymousSubmission { session_id: 1, vp }),
        Err(SubmitError::SuspiciousBloom)
    );
}

#[test]
fn replayed_vp_is_deduplicated() {
    let srv = server(3);
    let mut rng = StdRng::seed_from_u64(4);
    let (fin, _) = exchange_minute(
        &mut rng,
        0,
        |s| GeoPos::new(s as f64, 0.0),
        |s| GeoPos::new(s as f64, 30.0),
    );
    let vp = fin.profile.into_stored();
    assert_eq!(
        srv.submit(AnonymousSubmission {
            session_id: 10,
            vp: vp.clone()
        }),
        Ok(())
    );
    // Replaying the same VP under a different session id changes nothing.
    assert_eq!(
        srv.submit(AnonymousSubmission { session_id: 11, vp }),
        Err(SubmitError::Duplicate)
    );
}

#[test]
fn truncated_vp_is_rejected() {
    let srv = server(5);
    let mut rng = StdRng::seed_from_u64(6);
    let mut b = VpBuilder::new(&mut rng, 0, GeoPos::new(0.0, 0.0), VpKind::Actual);
    for s in 0..30 {
        b.record_second(b"x", GeoPos::new(s as f64, 0.0));
    }
    let vp = b.finalize().profile.into_stored();
    assert_eq!(
        srv.submit(AnonymousSubmission { session_id: 1, vp }),
        Err(SubmitError::MalformedVds)
    );
}

#[test]
fn guard_vp_videos_can_never_be_claimed() {
    // Footnote 2 of the paper: guard VPs may end up on the request list,
    // but no video can ever validate against them — their hash fields are
    // random. Even the creator cannot cash in a guard VP.
    let mut rng = StdRng::seed_from_u64(7);
    let (mut fin, _) = exchange_minute(
        &mut rng,
        0,
        |s| GeoPos::new(s as f64 * 10.0, 0.0),
        |s| GeoPos::new(s as f64 * 10.0, 40.0),
    );
    let guards = create_guards(&mut rng, &mut fin, &StraightLine, &GuardConfig::default());
    assert!(!guards.is_empty());
    let guard = guards[0].clone().into_stored();
    // Whatever bytes anyone uploads, the cascaded chain cannot match the
    // random hash fields.
    let chunks: Vec<Vec<u8>> = (0..60).map(|i| vec![i as u8; 64]).collect();
    let upload = VideoUpload {
        vp_id: guard.id,
        chunks,
    };
    assert!(matches!(
        viewmap::core::solicit::validate_upload(&guard, &upload),
        Err(UploadError::Chain(_))
    ));
}

#[test]
fn location_cheating_vp_cannot_join_honest_layer() {
    // The core §6.3.1 property at the paper's scale (1000 legit VPs,
    // site ~3 km from the trusted VP): fakes form their own layer;
    // verification does not crown a fake even under a 400% flood from
    // 15% colluding attackers (away from the trusted VP's vicinity).
    let params = GeometricParams::default();
    let mut successes = 0;
    let runs = 8;
    for seed in 0..runs {
        let mut rng = StdRng::seed_from_u64(100 + seed);
        let mut map = SyntheticViewmap::generate(&params, &mut rng);
        if map.site_members().iter().all(|&i| !map.legit[i]) {
            successes += 1; // witness-free site: nothing to attack
            continue;
        }
        map.inject_attack(
            &AttackConfig {
                n_attackers: 150,
                attacker_hops: (6, 25),
                fake_ratio: 4.0,
                dummies_per_attacker: 0,
            },
            &mut rng,
        );
        let o = map.run_verification();
        if o.success {
            successes += 1;
        }
    }
    assert!(
        successes >= runs - 1,
        "verification lost too often: {successes}/{runs}"
    );
}

#[test]
fn stolen_vp_id_cannot_claim_someone_elses_reward() {
    let srv = server(8);
    let mut rng = StdRng::seed_from_u64(9);
    let (fin, _) = exchange_minute(
        &mut rng,
        0,
        |s| GeoPos::new(s as f64, 0.0),
        |s| GeoPos::new(s as f64, 30.0),
    );
    let id = fin.profile.id();
    srv.submit(AnonymousSubmission {
        session_id: 1,
        vp: fin.profile.into_stored(),
    })
    .unwrap();
    srv.post_reward(id, 5);
    // The attacker knows the (public) VP id but not Q_u.
    for guess in 0..20u64 {
        let mut q = [0u8; 8];
        q[..8].copy_from_slice(&guess.to_le_bytes());
        assert!(srv.claim_reward(id, &q).is_err());
    }
    // The rightful owner still can.
    assert_eq!(srv.claim_reward(id, &fin.secret), Ok(5));
}

#[test]
fn forged_cash_and_cross_server_cash_rejected() {
    let srv_a = server(10);
    let srv_b = server(11);
    let mut rng = StdRng::seed_from_u64(12);
    // Mint legitimate cash on server A.
    let (fin, _) = exchange_minute(
        &mut rng,
        0,
        |s| GeoPos::new(s as f64, 0.0),
        |s| GeoPos::new(s as f64, 30.0),
    );
    let id = fin.profile.id();
    let secret = fin.secret;
    srv_a
        .submit(AnonymousSubmission {
            session_id: 1,
            vp: fin.profile.into_stored(),
        })
        .unwrap();
    srv_a.post_reward(id, 1);
    let mut wallet = viewmap::core::reward::Wallet::new();
    let (pending, blinded) = wallet.prepare(&mut rng, srv_a.public_key(), 1);
    let signed = srv_a.issue_blind_signatures(id, &secret, &blinded).unwrap();
    wallet.accept_signed(srv_a.public_key(), pending, &signed);
    // Valid on A...
    assert!(srv_a.redeem(&wallet.cash[0]).is_ok());
    // ...worthless on B (different key).
    assert!(srv_b.redeem(&wallet.cash[0]).is_err());
}

#[test]
fn anonymity_channel_gives_server_no_stable_handle() {
    // The privacy requirement behind the Tor substitution: across many
    // batches from the same vehicle, session ids never repeat, so the
    // server cannot group a vehicle's uploads.
    let mut rng = StdRng::seed_from_u64(13);
    let mut channel = viewmap::core::upload::AnonymousChannel::new();
    let mut seen = std::collections::HashSet::new();
    for round in 0..20u64 {
        let (fin, _) = exchange_minute(
            &mut rng,
            round * 60,
            move |s| GeoPos::new((round * 60 + s) as f64 * 10.0, 0.0),
            move |s| GeoPos::new((round * 60 + s) as f64 * 10.0, 30.0),
        );
        channel.enqueue(fin.profile);
        for sub in channel.flush(&mut rng) {
            assert!(
                seen.insert(sub.session_id),
                "session id reuse across batches"
            );
        }
    }
}

#[test]
fn dos_flood_of_malformed_vps_cannot_fill_the_database() {
    let srv = server(14);
    let mut rng = StdRng::seed_from_u64(15);
    let mut accepted = 0;
    for i in 0..50 {
        // Flood: random VD counts, saturated blooms, duplicates.
        let mut b = VpBuilder::new(&mut rng, 0, GeoPos::new(0.0, 0.0), VpKind::Actual);
        let secs = 1 + (i % 59);
        for s in 0..secs {
            b.record_second(b"junk", GeoPos::new(s as f64, 0.0));
        }
        let mut vp = b.finalize().profile.into_stored();
        if rng.gen_bool(0.5) {
            vp.bloom = BloomFilter::from_bytes(vec![0xff; 256], 8);
        }
        if srv
            .submit(AnonymousSubmission {
                session_id: i as u64,
                vp,
            })
            .is_ok()
        {
            accepted += 1;
        }
    }
    assert_eq!(accepted, 0, "malformed flood must be fully rejected");
    assert_eq!(srv.total_vps(), 0);
}
