//! Cross-crate integration tests: the full ViewMap pipeline from driving
//! to reward, including the adversarial paths.

use rand::rngs::StdRng;
use rand::SeedableRng;
use viewmap::core::reward::Wallet;
use viewmap::core::server::{RedeemError, RewardError, ViewMapServer};
use viewmap::core::solicit::{UploadError, VideoUpload};
use viewmap::core::types::{GeoPos, MinuteId, SECONDS_PER_VP};
use viewmap::core::upload::AnonymousChannel;
use viewmap::core::viewmap::{Site, ViewmapConfig};
use viewmap::core::vp::{FinalizedMinute, VpBuilder, VpKind};

/// Drive a convoy of `n` vehicles along a line, all exchanging VDs with
/// every vehicle in DSRC range; vehicle 0 is a police car.
fn convoy(n: usize, spacing: f64, seed: u64) -> (Vec<FinalizedMinute>, Vec<Vec<Vec<u8>>>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut builders: Vec<VpBuilder> = (0..n)
        .map(|i| {
            let kind = if i == 0 {
                VpKind::Trusted
            } else {
                VpKind::Actual
            };
            VpBuilder::new(&mut rng, 0, GeoPos::new(i as f64 * spacing, 0.0), kind)
        })
        .collect();
    let mut videos: Vec<Vec<Vec<u8>>> = vec![Vec::new(); n];
    for s in 0..SECONDS_PER_VP {
        let now = s + 1;
        let locs: Vec<GeoPos> = (0..n)
            .map(|i| GeoPos::new(i as f64 * spacing + s as f64 * 11.0, 0.0))
            .collect();
        let vds: Vec<_> = (0..n)
            .map(|i| {
                let chunk: Vec<u8> = (0..64u64)
                    .map(|j| ((seed + i as u64 * 13 + s * 7 + j) % 251) as u8)
                    .collect();
                let vd = builders[i].record_second(&chunk, locs[i]);
                videos[i].push(chunk);
                vd
            })
            .collect();
        for i in 0..n {
            for j in 0..n {
                if i != j && locs[i].distance(&locs[j]) <= 399.0 {
                    builders[i].accept_neighbor_vd(vds[j], now, locs[i]);
                }
            }
        }
    }
    (builders.into_iter().map(|b| b.finalize()).collect(), videos)
}

#[test]
fn full_pipeline_drive_to_reward() {
    let (mut fins, videos) = convoy(6, 150.0, 1);
    let mut rng = StdRng::seed_from_u64(2);
    let server = ViewMapServer::new(&mut rng, 512, ViewmapConfig::default());

    // Police VP through the authority channel; others anonymously.
    let police = fins.remove(0);
    server
        .submit_trusted(police.profile.into_stored())
        .expect("trusted accepted");
    let mut channel = AnonymousChannel::new();
    let witness = &fins[2]; // vehicle 3 of the original convoy
    let witness_id = witness.profile.id();
    let witness_secret = witness.secret;
    let witness_video = videos[3].clone();
    for fin in &fins {
        channel.enqueue(fin.profile.clone());
    }
    for sub in channel.flush(&mut rng) {
        server.submit(sub).expect("accepted");
    }
    assert_eq!(server.total_vps(), 6);

    // Incident near vehicle 3's trajectory.
    let site = Site {
        center: GeoPos::new(3.0 * 150.0 + 300.0, 0.0),
        radius_m: 250.0,
    };
    let vm = server.build_viewmap(MinuteId(0), site);
    assert!(vm.edge_count() >= 5, "convoy should be chained");
    let solicited = server.investigate(MinuteId(0), site);
    assert!(
        solicited.contains(&witness_id),
        "witness must be solicited; got {solicited:?}"
    );

    // Upload, validate, reward, spend.
    server
        .upload_video(&VideoUpload {
            vp_id: witness_id,
            chunks: witness_video,
        })
        .expect("honest video validates");
    server.post_reward(witness_id, 2);
    let mut wallet = Wallet::new();
    let units = server.claim_reward(witness_id, &witness_secret).unwrap();
    let (pending, blinded) = wallet.prepare(&mut rng, server.public_key(), units);
    let signed = server
        .issue_blind_signatures(witness_id, &witness_secret, &blinded)
        .unwrap();
    assert_eq!(
        wallet.accept_signed(server.public_key(), pending, &signed),
        2
    );
    for cash in &wallet.cash {
        assert_eq!(server.redeem(cash), Ok(()));
    }
    assert_eq!(
        server.redeem(&wallet.cash[1]),
        Err(RedeemError::DoubleSpend)
    );
}

#[test]
fn tampered_video_is_rejected_end_to_end() {
    let (mut fins, videos) = convoy(4, 150.0, 3);
    let mut rng = StdRng::seed_from_u64(4);
    let server = ViewMapServer::new(&mut rng, 512, ViewmapConfig::default());
    let police = fins.remove(0);
    server.submit_trusted(police.profile.into_stored()).unwrap();
    let victim_id = fins[0].profile.id();
    let mut channel = AnonymousChannel::new();
    for fin in &fins {
        channel.enqueue(fin.profile.clone());
    }
    for sub in channel.flush(&mut rng) {
        server.submit(sub).unwrap();
    }
    let site = Site {
        center: GeoPos::new(150.0, 0.0),
        radius_m: 400.0,
    };
    let solicited = server.investigate(MinuteId(0), site);
    assert!(solicited.contains(&victim_id));

    // The attacker intercepts the solicitation and uploads a doctored
    // video under the honest VP id — one frame replaced.
    let mut doctored = videos[1].clone();
    doctored[30] = vec![0u8; 64];
    let err = server
        .upload_video(&VideoUpload {
            vp_id: victim_id,
            chunks: doctored,
        })
        .unwrap_err();
    assert!(matches!(err, UploadError::Chain(_)), "got {err:?}");
}

#[test]
fn reward_requires_ownership_and_board_entry() {
    let (mut fins, _) = convoy(3, 120.0, 5);
    let mut rng = StdRng::seed_from_u64(6);
    let server = ViewMapServer::new(&mut rng, 512, ViewmapConfig::default());
    let police = fins.remove(0);
    server.submit_trusted(police.profile.into_stored()).unwrap();
    let fin = fins.remove(0);
    let id = fin.profile.id();
    let secret = fin.secret;
    server
        .submit(viewmap::core::upload::AnonymousSubmission {
            session_id: 1,
            vp: fin.profile.into_stored(),
        })
        .unwrap();

    // Not on the board yet.
    assert_eq!(
        server.claim_reward(id, &secret),
        Err(RewardError::NotOnBoard)
    );
    server.post_reward(id, 1);
    // Thief with the wrong secret.
    assert_eq!(
        server.claim_reward(id, &[9u8; 8]),
        Err(RewardError::BadOwnershipProof)
    );
    // Rightful owner succeeds.
    assert_eq!(server.claim_reward(id, &secret), Ok(1));
}

#[test]
fn fake_vps_cannot_enter_an_honest_viewmap() {
    // An attacker fabricates a VP claiming positions inside the site with
    // a bloom filter that *claims* to have heard the honest vehicles; the
    // two-way check keeps it isolated, and verification never marks it.
    let (mut fins, _) = convoy(5, 150.0, 7);
    let mut rng = StdRng::seed_from_u64(8);
    let server = ViewMapServer::new(&mut rng, 512, ViewmapConfig::default());
    let police = fins.remove(0);
    server.submit_trusted(police.profile.into_stored()).unwrap();
    let honest_profiles: Vec<_> = fins.iter().map(|f| f.profile.clone()).collect();
    let mut channel = AnonymousChannel::new();
    for fin in fins {
        channel.enqueue(fin.profile);
    }
    for sub in channel.flush(&mut rng) {
        server.submit(sub).unwrap();
    }

    // Fabricate the fake: copy claimed positions near the site, poison its
    // bloom with every honest VD it has scraped.
    let mut fake_builder = VpBuilder::new(&mut rng, 0, GeoPos::new(450.0, 5.0), VpKind::Actual);
    for s in 0..SECONDS_PER_VP {
        fake_builder.record_second(b"fake", GeoPos::new(450.0 + s as f64 * 11.0, 5.0));
    }
    let mut fake = fake_builder.finalize();
    for p in &honest_profiles {
        for vd in &p.vds {
            fake.profile.bloom.insert(&vd.bloom_key());
        }
    }
    let fake_id = fake.profile.id();
    server
        .submit(viewmap::core::upload::AnonymousSubmission {
            session_id: 2,
            vp: fake.profile.into_stored(),
        })
        .expect("server cannot tell it is fake at submission time");

    let site = Site {
        center: GeoPos::new(600.0, 0.0),
        radius_m: 300.0,
    };
    let vm = server.build_viewmap(MinuteId(0), site);
    // The fake VP is a member (it claims in-coverage positions) ...
    let fake_idx = vm.vps.iter().position(|vp| vp.id == fake_id);
    assert!(fake_idx.is_some(), "fake should be admitted as a member");
    // ... but has no viewlinks: honest blooms never heard it.
    assert!(
        vm.adj[fake_idx.unwrap()].is_empty(),
        "two-way check must isolate the fake"
    );
    let solicited = server.investigate(MinuteId(0), site);
    assert!(
        !solicited.contains(&fake_id),
        "fake VP must not be solicited"
    );
}
