//! Property-based tests (proptest) on the core data structures and
//! protocol invariants, spanning crates.

use proptest::prelude::*;
use viewmap::core::bloom::BloomFilter;
use viewmap::core::types::{GeoPos, VpId};
use viewmap::core::vd::{verify_chain, VdChain, ViewDigest};
use viewmap::crypto::{BigUint, Digest16};

proptest! {
    // ── SHA-256 / digests ────────────────────────────────────────────

    #[test]
    fn sha256_incremental_equals_oneshot(data in proptest::collection::vec(any::<u8>(), 0..512), split in 0usize..512) {
        let split = split.min(data.len());
        let mut h = viewmap::crypto::Sha256::new();
        h.update(&data[..split]);
        h.update(&data[split..]);
        prop_assert_eq!(h.finalize(), viewmap::crypto::sha256(&data));
    }

    #[test]
    fn digest16_is_deterministic_and_sensitive(a in proptest::collection::vec(any::<u8>(), 1..64)) {
        let d1 = Digest16::hash(&a);
        let d2 = Digest16::hash(&a);
        prop_assert_eq!(d1, d2);
        let mut b = a.clone();
        b[0] ^= 1;
        prop_assert_ne!(Digest16::hash(&b), d1);
    }

    // ── BigUint ring axioms ──────────────────────────────────────────

    #[test]
    fn bigint_add_commutes(a in any::<u128>(), b in any::<u128>()) {
        let ba = BigUint::from_bytes_be(&a.to_be_bytes());
        let bb = BigUint::from_bytes_be(&b.to_be_bytes());
        prop_assert_eq!(ba.add(&bb), bb.add(&ba));
    }

    #[test]
    fn bigint_mul_distributes(a in any::<u64>(), b in any::<u64>(), c in any::<u64>()) {
        let (ba, bb, bc) = (BigUint::from_u64(a), BigUint::from_u64(b), BigUint::from_u64(c));
        let left = ba.mul(&bb.add(&bc));
        let right = ba.mul(&bb).add(&ba.mul(&bc));
        prop_assert_eq!(left, right);
    }

    #[test]
    fn bigint_div_rem_reconstructs(a in any::<u128>(), b in 1u64..) {
        let ba = BigUint::from_bytes_be(&a.to_be_bytes());
        let bb = BigUint::from_u64(b);
        let (q, r) = ba.div_rem(&bb);
        prop_assert!(r < bb);
        prop_assert_eq!(q.mul(&bb).add(&r), ba);
    }

    #[test]
    fn bigint_bytes_roundtrip(bytes in proptest::collection::vec(any::<u8>(), 0..40)) {
        let n = BigUint::from_bytes_be(&bytes);
        let back = BigUint::from_bytes_be(&n.to_bytes_be());
        prop_assert_eq!(n, back);
    }

    #[test]
    fn bigint_shift_roundtrip(a in any::<u128>(), s in 0usize..100) {
        let n = BigUint::from_bytes_be(&a.to_be_bytes());
        prop_assert_eq!(n.shl(s).shr(s), n);
    }

    // ── Bloom filter ─────────────────────────────────────────────────

    #[test]
    fn bloom_never_false_negative(keys in proptest::collection::vec(any::<u64>(), 1..300)) {
        let mut f = BloomFilter::default();
        for k in &keys {
            f.insert(&Digest16::hash(&k.to_le_bytes()));
        }
        for k in &keys {
            prop_assert!(f.contains(&Digest16::hash(&k.to_le_bytes())));
        }
    }

    #[test]
    fn bloom_wire_roundtrip_preserves_queries(keys in proptest::collection::vec(any::<u64>(), 0..100)) {
        let mut f = BloomFilter::default();
        for k in &keys {
            f.insert(&Digest16::hash(&k.to_le_bytes()));
        }
        let g = BloomFilter::from_bytes(f.as_bytes().to_vec(), f.k());
        for probe in 0u64..200 {
            let key = Digest16::hash(&probe.to_le_bytes());
            prop_assert_eq!(f.contains(&key), g.contains(&key));
        }
    }

    // ── View digests / cascaded chain ────────────────────────────────

    #[test]
    fn vd_wire_roundtrip(secret in any::<[u8; 8]>(), t0 in 0u64..1_000_000, chunks in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 1..64), 1..20)) {
        let mut chain = VdChain::new(secret, t0, GeoPos::new(1.0, 2.0));
        for (i, c) in chunks.iter().enumerate() {
            let vd = chain.extend(c, GeoPos::new(i as f64, 2.0));
            let decoded = ViewDigest::decode(&vd.encode()).expect("decodes");
            prop_assert_eq!(decoded.seq, vd.seq);
            prop_assert_eq!(decoded.time, vd.time);
            prop_assert_eq!(decoded.file_size, vd.file_size);
            prop_assert_eq!(decoded.vp_id, vd.vp_id);
            prop_assert_eq!(decoded.hash, vd.hash);
        }
    }

    #[test]
    fn chain_verifies_iff_untampered(secret in any::<[u8; 8]>(), chunks in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 1..32), 2..20), flip in 0usize..1000) {
        let mut chain = VdChain::new(secret, 0, GeoPos::new(0.0, 0.0));
        let vds: Vec<ViewDigest> = chunks
            .iter()
            .map(|c| chain.extend(c, GeoPos::new(0.0, 0.0)))
            .collect();
        let id = VpId::from_secret(&secret);
        prop_assert!(verify_chain(id, &vds, &chunks).is_ok());
        // Flip one bit somewhere in the chunks → must fail.
        let mut tampered = chunks.clone();
        let ci = flip % tampered.len();
        let bi = (flip / tampered.len()) % tampered[ci].len();
        tampered[ci][bi] ^= 0x80;
        prop_assert!(verify_chain(id, &vds, &tampered).is_err());
    }

    // ── Geometry / routing ───────────────────────────────────────────

    #[test]
    fn route_positions_monotone_along_arc(s1 in 0.0f64..500.0, s2 in 0.0f64..500.0) {
        use viewmap::geo::{Point, RoadNetwork, Router, NodeId};
        let net = RoadNetwork::from_links(
            vec![
                Point::new(0.0, 0.0),
                Point::new(250.0, 0.0),
                Point::new(500.0, 0.0),
            ],
            &[(0, 1), (1, 2)],
        );
        let route = Router::new(&net).route(NodeId(0), NodeId(2)).expect("path");
        let (lo, hi) = if s1 <= s2 { (s1, s2) } else { (s2, s1) };
        let p_lo = route.position_at(lo);
        let p_hi = route.position_at(hi);
        prop_assert!(p_lo.x <= p_hi.x + 1e-9);
    }

    #[test]
    fn grid_index_agrees_with_brute_force(points in proptest::collection::vec((0.0f64..1000.0, 0.0f64..1000.0), 1..80), q in (0.0f64..1000.0, 0.0f64..1000.0), r in 1.0f64..400.0) {
        use viewmap::geo::{GridIndex, Point};
        let pts: Vec<Point> = points.iter().map(|&(x, y)| Point::new(x, y)).collect();
        let grid = GridIndex::build(100.0, pts.iter().cloned().enumerate());
        let qp = Point::new(q.0, q.1);
        let mut got = grid.query_radius(&qp, r);
        got.sort_unstable();
        let expect: Vec<usize> = pts
            .iter()
            .enumerate()
            .filter(|(_, p)| p.distance(&qp) <= r)
            .map(|(i, _)| i)
            .collect();
        prop_assert_eq!(got, expect);
    }

    // ── Trust scores ─────────────────────────────────────────────────

    #[test]
    fn trustrank_scores_bounded_and_seeded(n in 2usize..40, edges in proptest::collection::vec((0usize..40, 0usize..40), 1..120)) {
        use viewmap::core::trustrank::trust_scores;
        let mut adj = vec![Vec::new(); n];
        for &(a, b) in &edges {
            let (a, b) = (a % n, b % n);
            if a != b && !adj[a].contains(&b) {
                adj[a].push(b);
                adj[b].push(a);
            }
        }
        let scores = trust_scores(&adj, &[0], 0.8, 1e-10);
        for &s in &scores {
            prop_assert!((0.0..=1.0 + 1e-9).contains(&s));
        }
        // The seed always retains its base inflow.
        prop_assert!(scores[0] >= 0.2 * (1.0 - 0.8));
    }
}
