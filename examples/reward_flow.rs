//! The untraceable-reward protocol, step by step (Section 5.3, App. A).
//!
//! Shows exactly what each party sees — in particular that the system
//! signs cash without ever seeing it, and that the cash it later redeems
//! cannot be linked back to the video, the VP, or the uploader.
//!
//! Run with: `cargo run --example reward_flow`

use rand::rngs::StdRng;
use rand::SeedableRng;
use viewmap::core::reward::Wallet;
use viewmap::core::server::{RedeemError, ViewMapServer};
use viewmap::core::types::{GeoPos, VpId, SECONDS_PER_VP};
use viewmap::core::viewmap::ViewmapConfig;
use viewmap::core::vp::{VpBuilder, VpKind};

fn main() {
    println!("== untraceable rewarding walkthrough ==\n");
    let mut rng = StdRng::seed_from_u64(42);
    let server = ViewMapServer::new(&mut rng, 512, ViewmapConfig::default());

    // A user recorded a video last week; its VP sits in the database.
    let mut builder = VpBuilder::new(&mut rng, 0, GeoPos::new(0.0, 0.0), VpKind::Actual);
    for s in 0..SECONDS_PER_VP {
        builder.record_second(b"evidence-frame", GeoPos::new(s as f64 * 10.0, 0.0));
    }
    let fin = builder.finalize();
    let vp_id = fin.profile.id();
    let secret = fin.secret;
    server
        .submit(viewmap::core::upload::AnonymousSubmission {
            session_id: 0xdead_beef,
            vp: fin.profile.into_stored(),
        })
        .expect("VP stored");

    // The video passed human review; the board posts "request for reward".
    server.post_reward(vp_id, 4);
    println!("reward board: {:?}\n", server.reward_board());

    // Step (i): ownership proof. R_u = H(Q_u); only the owner knows Q_u.
    println!("step i   — user proves ownership of {vp_id} with Q_u");
    assert_eq!(VpId::from_secret(&secret), vp_id);
    let units = server.claim_reward(vp_id, &secret).expect("proof accepted");
    println!("           system answers: award is {units} unit(s)\n");

    // Step (ii): the user draws random messages and blinds them.
    let mut wallet = Wallet::new();
    let (pending, blinded) = wallet.prepare(&mut rng, server.public_key(), units);
    println!("step ii  — user blinds {units} random cash messages");
    println!("           (blinded value ≠ message hash: the signer is blind)\n");

    // Step (iii): the system signs blind.
    let signed = server
        .issue_blind_signatures(vp_id, &secret, &blinded)
        .expect("signatures issued");
    println!(
        "step iii — system signs {} blinded messages with K_S⁻",
        signed.len()
    );

    // Step (iv): unblind into self-verifiable cash.
    let added = wallet.accept_signed(server.public_key(), pending, &signed);
    println!("step iv  — user unblinds: {added} valid cash unit(s) in the wallet\n");

    // Anyone can verify authenticity; the system cannot link cash → video.
    for (i, cash) in wallet.cash.iter().enumerate() {
        assert!(cash.verify(server.public_key()));
        println!(
            "cash #{i}: message {} ... — verifies under the system's public key ✔",
            cash.message[..4]
                .iter()
                .map(|b| format!("{b:02x}"))
                .collect::<String>()
        );
    }

    // Spending and double-spending.
    println!("\nspending all units once:");
    for cash in &wallet.cash {
        server.redeem(cash).expect("fresh unit accepted");
    }
    println!("  all accepted ✔");
    println!("attempting to double-spend unit #0:");
    match server.redeem(&wallet.cash[0]) {
        Err(RedeemError::DoubleSpend) => println!("  rejected: double spend detected ✔"),
        other => panic!("expected double-spend rejection, got {other:?}"),
    }
    println!("\nreward flow complete ✔");
}
