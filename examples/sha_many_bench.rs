//! Microbench: single-stream vs multi-buffer SHA-256 at two message
//! shapes — 72 B (the VD link-key shape, driver-overhead-sensitive) and
//! 8 KiB (kernel-throughput-dominated). Run with --release.
use std::time::Instant;

fn bench(label: &str, data: &[Vec<u8>]) {
    let msgs: Vec<&[u8]> = data.iter().map(|d| d.as_slice()).collect();
    let _ = vm_crypto::sha256(&data[0]);
    let t = Instant::now();
    let mut acc = 0u8;
    for m in &msgs {
        acc ^= vm_crypto::sha256(m).0[0];
    }
    let single = t.elapsed().as_secs_f64();
    let t = Instant::now();
    let many = vm_crypto::sha256_many(&msgs);
    let many_t = t.elapsed().as_secs_f64();
    acc ^= many[0].0[0];
    eprintln!(
        "{label}: single {single:.3}s  many {many_t:.3}s  speedup {:.2}x  (acc {acc})",
        single / many_t
    );
}

fn main() {
    let small: Vec<Vec<u8>> = (0..600_000u64)
        .map(|i| {
            let mut b = vec![0u8; 72];
            b[..8].copy_from_slice(&i.to_le_bytes());
            b
        })
        .collect();
    bench("72B x 600k", &small);
    let big: Vec<Vec<u8>> = (0..6_000u64)
        .map(|i| {
            let mut b = vec![0u8; 8192];
            b[..8].copy_from_slice(&i.to_le_bytes());
            b
        })
        .collect();
    bench("8KiB x 6k", &big);
}
