//! A full client session against the network front-end.
//!
//! Stands up a **durable** ViewMap service (append-log store + TCP
//! front-end) on an ephemeral loopback port, then drives one uploader /
//! investigator session end to end over the wire: pipelined VP
//! submission, investigation, video solicitation + upload, and the
//! untraceable reward round (claim → blind-sign → unblind → redeem).
//! Finally it restarts the server from its log to show recovery — the
//! signing key persists with the store, so cash minted before the
//! restart still redeems after it.
//!
//! Run with: `cargo run --release --example service_session`

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;
use viewmap::core::reward::Wallet;
use viewmap::core::server::ViewMapServer;
use viewmap::core::solicit::VideoUpload;
use viewmap::core::types::{GeoPos, MinuteId, SECONDS_PER_VP};
use viewmap::core::viewmap::{Site, ViewmapConfig};
use viewmap::core::vp::{VpBuilder, VpKind};
use viewmap::service::{ServiceConfig, VmClient, VmService};
use viewmap::store::{PersistentServer, StoreConfig};

fn main() {
    let mut rng = StdRng::seed_from_u64(2017);
    let dir = std::env::temp_dir().join(format!("viewmap_service_session_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    println!("== vm-service session ==\n");

    // ── 1. A durable server: fresh store, fresh key, no warnings. ────
    let (server, report) = ViewMapServer::open(
        &mut rng,
        512,
        ViewmapConfig::default(),
        &dir,
        StoreConfig::default(),
    )
    .expect("open store");
    println!(
        "server up: {} recovered records, {} warnings",
        report.records,
        report.warnings().len()
    );

    // The authority seeds one trusted VP in-process — deliberately not
    // a wire operation (the public front-end must not mint trust).
    let mut police = VpBuilder::new(&mut rng, 0, GeoPos::new(240.0, 0.0), VpKind::Trusted);
    for s in 0..SECONDS_PER_VP {
        police.record_second(&[0u8; 32], GeoPos::new(240.0 - s as f64, 0.0));
    }
    server
        .submit_trusted(police.finalize().profile.into_stored())
        .expect("trusted anchor stored");

    let server = Arc::new(server);
    let handle = VmService::spawn(Arc::clone(&server), "127.0.0.1:0", ServiceConfig::default())
        .expect("spawn service");
    println!("listening on {}\n", handle.addr());

    // ── 2. A vehicle records a minute of video and uploads its VP over
    //    the wire (anonymized; the session id is meaningless). ────────
    let mut cam = VpBuilder::new(&mut rng, 0, GeoPos::new(0.0, 8.0), VpKind::Actual);
    let chunks: Vec<Vec<u8>> = (0..SECONDS_PER_VP)
        .map(|s| (0..256u64).map(|j| ((s * 31 + j) % 251) as u8).collect())
        .collect();
    for (s, chunk) in chunks.iter().enumerate() {
        cam.record_second(chunk, GeoPos::new(s as f64 * 8.0, 8.0));
    }
    let fin = cam.finalize();
    let vp_id = fin.profile.id();
    let secret = fin.secret;

    let mut client = VmClient::connect(handle.addr()).expect("connect");
    client
        .submit(&fin.profile.clone().into_stored())
        .expect("VP accepted");
    println!(
        "uploaded VP {vp_id} ({} total stored)",
        client.total_vps().unwrap()
    );

    // ── 3. An investigator works the incident minute over the wire. ──
    let site = Site {
        center: GeoPos::new(200.0, 0.0),
        radius_m: 200.0,
    };
    let verified = client
        .investigate(MinuteId(0), site)
        .expect("investigation");
    println!(
        "investigation verified {} VP(s): {verified:?}",
        verified.len()
    );

    // ── 4. After manual review the investigator also solicits the
    //    witness VP by id; the owner sees the posting and uploads the
    //    video, which the server validates against the stored cascade. ─
    client.solicit(vp_id).expect("solicitation posted");
    client
        .upload_video(&VideoUpload { vp_id, chunks })
        .expect("video validates against the stored cascade");
    println!("video upload validated");

    // ── 5. Human review happens server-side; the reward round then
    //    runs over the wire without ever identifying the owner. ───────
    server.post_reward(vp_id, 3);
    let units = client
        .claim_reward(vp_id, &secret)
        .expect("ownership proof");
    let pk = client.public_key().expect("system key");
    let mut wallet = Wallet::new();
    let (pending, blinded) = wallet.prepare(&mut rng, &pk, units);
    let signed = client
        .blind_sign(vp_id, &secret, &blinded)
        .expect("blind signatures");
    let minted = wallet.accept_signed(&pk, pending, &signed);
    println!("minted {minted} unit(s) of untraceable cash");
    client.redeem(&wallet.cash[0]).expect("cash redeems");
    println!(
        "redeemed 1 of {} unit(s); double-spend now rejected: {}",
        wallet.balance(),
        client.redeem(&wallet.cash[0]).is_err()
    );

    // ── 6. Restart from the log: state recovers, and because the
    //    signing key persists with the store (`signing.key`), the
    //    units still in the wallet redeem under the recovered server. ─
    drop(client);
    drop(handle);
    let total_before = server.total_vps();
    drop(server);
    let (server, report) = ViewMapServer::open(
        &mut rng,
        512,
        ViewmapConfig::default(),
        &dir,
        StoreConfig::default(),
    )
    .expect("recover");
    println!(
        "\nrecovered {} VPs ({} before shutdown)",
        server.total_vps(),
        total_before
    );
    for warning in report.warnings() {
        println!("warning: {warning}");
    }
    server
        .redeem(&wallet.cash[1])
        .expect("pre-restart cash redeems under the persisted key");
    println!("pre-restart cash unit redeemed after recovery ✔");

    // ── 7. Operator's view: scrape the telemetry snapshot over the
    //    same wire the clients use (`STATS`, opcode 0x0B). The full
    //    text covers every layer; here we show the request-latency
    //    histograms and the recovery accounting from the restart. ─────
    let server = Arc::new(server);
    let handle = VmService::spawn(Arc::clone(&server), "127.0.0.1:0", ServiceConfig::default())
        .expect("respawn service");
    let mut client = VmClient::connect(handle.addr()).expect("reconnect");
    client
        .investigate(MinuteId(0), site)
        .expect("warm the recovered cell");
    let stats = client.stats().expect("STATS scrape");
    println!(
        "\nSTATS scrape ({} metric lines); non-zero highlights:",
        stats.lines().count()
    );
    for line in stats.lines().filter(|l| {
        (l.starts_with("vm_service_request_us")
            || l.starts_with("vm_store_recover")
            || l.starts_with("vm_store_recoveries_total")
            || l.starts_with("vm_core_vps_stored_total"))
            && !l.ends_with(" 0")
    }) {
        println!("  {line}");
    }

    drop(client);
    drop(handle);
    let _ = std::fs::remove_dir_all(&dir);
}
