//! Accident investigation at city scale (the paper's Section 3.1 use
//! case, driven end-to-end through the simulation substrate).
//!
//! Simulates a fleet over a synthetic city for several minutes, injects a
//! police car's trusted VPs, picks an incident at a busy location, builds
//! the per-minute viewmap, runs TrustRank verification, and reports which
//! anonymous VPs would be solicited for their videos.
//!
//! Run with: `cargo run --release --example accident_investigation`

use viewmap::core::types::{GeoPos, MinuteId};
use viewmap::core::viewmap::{Site, Viewmap, ViewmapConfig};
use viewmap::geo::CityParams;
use viewmap::mobility::SpeedScenario;
use viewmap::radio::Environment;
use viewmap::sim::{run_protocol_sim, SimConfig};

fn main() {
    println!("== accident investigation example ==\n");
    let cfg = SimConfig {
        vehicles: 60,
        minutes: 3,
        speed: SpeedScenario::Fixed(50.0),
        alpha: 0.1,
        environment: Environment::residential(),
        city: CityParams {
            width_m: 2000.0,
            height_m: 2000.0,
            block_m: 200.0,
            jitter: 0.15,
            keep_link_prob: 0.94,
            diagonals: 2,
        },
        keep_vps: true,
        chunk_bytes: 32,
    };
    println!(
        "simulating {} vehicles for {} minutes (α = {}) ...",
        cfg.vehicles, cfg.minutes, cfg.alpha
    );
    let out = run_protocol_sim(&cfg, 20170327);
    println!(
        "→ {} actual VPs, {} guard VPs, avg contact {:.1} s\n",
        out.actual_vps, out.guard_vps, out.avg_contact_s
    );

    // Investigate minute 1. The "police car" is vehicle 0: its actual VP
    // becomes the trusted seed (authorities submit through their own
    // channel, Section 4).
    let minute = 1usize;
    let record = &out.minutes[minute];
    let mut vps = record.vps.clone().expect("keep_vps was set");
    let police_idx = record.actual_idx[0];
    vps[police_idx].trusted = true;

    // Incident: where the densest cluster of vehicles was (a plausible
    // multi-witness crash site) — here simply vehicle 7's mid-minute
    // position.
    let incident = {
        let s = record.tracker.starts[record.actual_idx[7]];
        let e = record.tracker.ends[record.actual_idx[7]];
        GeoPos::new((s.x + e.x) / 2.0, (s.y + e.y) / 2.0)
    };
    let site = Site {
        center: incident,
        radius_m: 200.0,
    };
    println!(
        "incident at ({:.0} m, {:.0} m), site radius {} m; trusted VP is {:.0} m away",
        incident.x,
        incident.y,
        site.radius_m,
        record.tracker.starts[police_idx].distance(&incident)
    );

    let cfg_vm = ViewmapConfig::default();
    let vm = Viewmap::build_owned(vps, site, MinuteId(minute as u64), &cfg_vm);
    println!(
        "viewmap for minute {}: {} members, {} viewlinks, connectivity {:.0}%",
        minute,
        vm.len(),
        vm.edge_count(),
        vm.member_connectivity() * 100.0
    );

    let (verification, solicited) = vm.verify(&site, &cfg_vm);
    println!(
        "site members: {}, marked legitimate: {}",
        vm.site_members(&site).len(),
        solicited.len()
    );
    match verification.top {
        Some(top) => println!(
            "highest-trust site VP: index {top}, score {:.3e}",
            verification.scores[top]
        ),
        None => println!("no VP inside the site this minute"),
    }
    println!(
        "\nsolicitation board would post {} VP id(s):",
        solicited.len()
    );
    for id in solicited.iter().take(8) {
        println!("  request-for-video {id}");
    }
    if solicited.len() > 8 {
        println!("  ... and {} more", solicited.len() - 8);
    }
    println!("\nNote: owners of *actual* VPs among these will upload their");
    println!("videos; guard VPs on the list were deleted on the vehicles");
    println!("and simply never answer (Section 5.1.2, footnote 2).");
}
