//! Location privacy under a tracking adversary (Section 6.2.2).
//!
//! Runs the same fleet twice — once with guard VPs (α = 0.1) and once
//! without — and pits the multi-hypothesis tracker of Hoh & Gruteser
//! against the anonymized VP database. Prints the entropy and tracking-
//! success curves side by side (the shape of Figs. 10/11).
//!
//! Run with: `cargo run --release --example privacy_tracking`

use viewmap::core::tracker::TrackerParams;
use viewmap::geo::CityParams;
use viewmap::mobility::SpeedScenario;
use viewmap::radio::Environment;
use viewmap::sim::{privacy_curves, run_protocol_sim, SimConfig};

fn main() {
    println!("== privacy tracking example ==\n");
    let base = SimConfig {
        vehicles: 50,
        minutes: 10,
        speed: SpeedScenario::Mix,
        alpha: 0.1,
        environment: Environment::residential(),
        city: CityParams::small_area(),
        keep_vps: false,
        chunk_bytes: 16,
    };
    println!(
        "simulating {} vehicles, {} minutes, 4×4 km² (twice: α=0.1 and α=0) ...\n",
        base.vehicles, base.minutes
    );
    let with_guards = run_protocol_sim(&base, 1);
    let no_guards = run_protocol_sim(
        &SimConfig {
            alpha: 0.0,
            ..base.clone()
        },
        1,
    );
    println!(
        "with guards:  {} actual + {} guard VPs",
        with_guards.actual_vps, with_guards.guard_vps
    );
    println!("without:      {} actual VPs\n", no_guards.actual_vps);

    let params = TrackerParams::default();
    let targets = 30;
    let pg = privacy_curves(&with_guards, targets, params);
    let pn = privacy_curves(&no_guards, targets, params);

    println!("minute | entropy(guards) entropy(none) | success(guards) success(none)");
    println!("-------+-------------------------------+------------------------------");
    for i in 0..pg.minutes.len() {
        println!(
            "  {:>4} | {:>15.2} {:>13.2} | {:>15.3} {:>13.3}",
            pg.minutes[i], pg.entropy_bits[i], pn.entropy_bits[i], pg.success[i], pn.success[i]
        );
    }
    let last = pg.minutes.len() - 1;
    println!(
        "\nafter {} minutes: tracker confidence {:.1}% with guards vs {:.1}% without",
        pg.minutes[last],
        pg.success[last] * 100.0,
        pn.success[last] * 100.0
    );
    println!("(the paper reports < 10% within 15 min at n=50, vs > 90% without guards)");
}
