//! Quickstart: the whole ViewMap story on two vehicles.
//!
//! One minute of driving → VD exchange over DSRC → view profiles →
//! anonymous upload → viewmap construction around an incident →
//! TrustRank verification → video solicitation → cascaded-hash
//! validation → untraceable reward.
//!
//! Run with: `cargo run --example quickstart`

use rand::rngs::StdRng;
use rand::SeedableRng;
use viewmap::core::reward::Wallet;
use viewmap::core::server::ViewMapServer;
use viewmap::core::solicit::VideoUpload;
use viewmap::core::types::{GeoPos, MinuteId, SECONDS_PER_VP};
use viewmap::core::upload::AnonymousChannel;
use viewmap::core::viewmap::{Site, ViewmapConfig};
use viewmap::core::vp::{VpBuilder, VpKind};

fn main() {
    let mut rng = StdRng::seed_from_u64(2017);

    // ── 1. Drive: three vehicles record for one minute and exchange VDs.
    // A witness (vehicle A), the incident-involved vehicle (B), and a
    // police car (trusted, some distance away but chained via B).
    println!("== ViewMap quickstart ==\n");
    let mut a = VpBuilder::new(&mut rng, 0, GeoPos::new(0.0, 0.0), VpKind::Actual);
    let mut b = VpBuilder::new(&mut rng, 0, GeoPos::new(120.0, 0.0), VpKind::Actual);
    let mut police = VpBuilder::new(&mut rng, 0, GeoPos::new(420.0, 0.0), VpKind::Trusted);

    // Keep the actual video bytes of A — it will be solicited later.
    let mut video_a: Vec<Vec<u8>> = Vec::new();
    for s in 0..SECONDS_PER_VP {
        let now = s + 1;
        let (xa, xb, xp) = (
            s as f64 * 12.0,
            120.0 + s as f64 * 12.0,
            420.0 + s as f64 * 11.0,
        );
        let chunk_a: Vec<u8> = (0..256u32)
            .map(|j| ((s as u32 * 31 + j) % 251) as u8)
            .collect();
        let vd_a = a.record_second(&chunk_a, GeoPos::new(xa, 0.0));
        video_a.push(chunk_a);
        let vd_b = b.record_second(b"b-frame", GeoPos::new(xb, 0.0));
        let vd_p = police.record_second(b"p-frame", GeoPos::new(xp, 0.0));
        // Everyone within DSRC range hears everyone (open road).
        a.accept_neighbor_vd(vd_b, now, GeoPos::new(xa, 0.0));
        b.accept_neighbor_vd(vd_a, now, GeoPos::new(xb, 0.0));
        b.accept_neighbor_vd(vd_p, now, GeoPos::new(xb, 0.0));
        police.accept_neighbor_vd(vd_b, now, GeoPos::new(xp, 0.0));
    }
    let fin_a = a.finalize();
    let fin_b = b.finalize();
    let fin_p = police.finalize();
    println!(
        "vehicle A recorded 1-min video; VP id {} ({} bytes of VP vs ~50 MB of video)",
        fin_a.profile.id(),
        fin_a.profile.user_storage_bytes()
    );

    // ── 2. Upload anonymously (Tor substitute), police via authority path.
    let mut server_rng = StdRng::seed_from_u64(99);
    let server = ViewMapServer::new(&mut server_rng, 512, ViewmapConfig::default());
    let mut channel = AnonymousChannel::new();
    let a_id = fin_a.profile.id();
    let a_secret = fin_a.secret;
    channel.enqueue(fin_a.profile);
    channel.enqueue(fin_b.profile);
    for sub in channel.flush(&mut rng) {
        server.submit(sub).expect("VP accepted");
    }
    server
        .submit_trusted(fin_p.profile.into_stored())
        .expect("trusted VP accepted");
    println!("server now holds {} anonymized VPs\n", server.total_vps());

    // ── 3. Incident investigation: build the viewmap, verify, solicit.
    let site = Site {
        center: GeoPos::new(350.0, 0.0),
        radius_m: 200.0,
    };
    let vm = server.build_viewmap(MinuteId(0), site);
    println!(
        "viewmap: {} member VPs, {} viewlinks, {} trusted seed(s)",
        vm.len(),
        vm.edge_count(),
        vm.trusted.len()
    );
    let solicited = server.investigate(MinuteId(0), site);
    println!(
        "solicitation board (request-for-video): {} VP id(s)",
        solicited.len()
    );
    assert!(solicited.contains(&a_id), "witness A should be solicited");

    // ── 4. A sees its id on the board and uploads the matching video.
    let upload = VideoUpload {
        vp_id: a_id,
        chunks: video_a,
    };
    server
        .upload_video(&upload)
        .expect("cascaded-hash validation");
    println!("video of VP {a_id} validated against stored VDs ✔");

    // ── 5. Human review passes; untraceable reward of 3 units.
    server.post_reward(a_id, 3);
    let mut wallet = Wallet::new();
    let units = server
        .claim_reward(a_id, &a_secret)
        .expect("ownership proof");
    let (pending, blinded) = wallet.prepare(&mut rng, server.public_key(), units);
    let signed = server
        .issue_blind_signatures(a_id, &a_secret, &blinded)
        .expect("blind signing");
    wallet.accept_signed(server.public_key(), pending, &signed);
    println!(
        "wallet holds {} unit(s) of untraceable cash",
        wallet.balance()
    );

    // ── 6. Spend the cash; double spending is caught.
    server.redeem(&wallet.cash[0]).expect("first spend fine");
    let double = server.redeem(&wallet.cash[0]);
    println!("second spend of the same unit: {double:?}");
    assert!(double.is_err());
    println!("\nquickstart complete ✔");
}
