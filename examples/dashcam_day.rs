//! A day in the life of a ViewMap-enabled dashcam.
//!
//! Exercises the integrated on-vehicle stack (`viewmap::dashcam`): frames
//! are plate-blurred in realtime *before* being hashed or stored, the SD
//! ring buffer rolls over as the card fills, a solicitation places an
//! evidence hold, and the held segment validates against the uploaded VP
//! at the server.
//!
//! Run with: `cargo run --release --example dashcam_day`

use rand::rngs::StdRng;
use rand::SeedableRng;
use viewmap::core::guard::StraightLine;
use viewmap::core::solicit::{validate_upload, VideoUpload};
use viewmap::core::types::{GeoPos, SECONDS_PER_VP};
use viewmap::vision::SyntheticScene;
use viewmap::{Dashcam, DashcamConfig};

fn main() {
    println!("== a day with a ViewMap dashcam ==\n");
    let mut rng = StdRng::seed_from_u64(7);
    // A small SD card: room for about four 160×120 minutes.
    let cfg = DashcamConfig {
        storage_bytes: 4 * 60 * 160 * 120,
        alpha: 0.1,
        width: 160,
        height: 120,
    };
    let mut cam = Dashcam::new(cfg);

    let mut minute_vps = Vec::new();
    for minute in 0..6u64 {
        let scene = SyntheticScene::generate(&mut rng, 160, 120, 1);
        for s in 0..SECONDS_PER_VP {
            let t = minute * SECONDS_PER_VP + s;
            let loc = GeoPos::new(t as f64 * 11.0, 0.0);
            let _vd = cam.record_second(&mut rng, &scene.frame.data, loc, t);
        }
        let out = cam.end_minute(&mut rng, &StraightLine);
        println!(
            "minute {minute}: VP {} | {} guard VP(s) | evicted minutes {:?} | card {} B",
            out.finalized.profile.id(),
            out.guards.len(),
            out.evicted_minutes,
            cam.storage().used_bytes(),
        );
        minute_vps.push(out.finalized);
    }
    println!(
        "\nplates blurred in realtime so far: {}",
        cam.plates_blurred()
    );
    println!(
        "segments on card: {} (oldest minute {:?})",
        cam.storage().len(),
        cam.storage().oldest_minute()
    );

    // Minute 4 gets solicited: evidence hold + upload + validation.
    let wanted = 4u64;
    let fin = &minute_vps[wanted as usize];
    let chunks = cam
        .answer_solicitation(wanted)
        .expect("recent segment still on card");
    let stored = fin.profile.clone().into_stored();
    let upload = VideoUpload {
        vp_id: stored.id,
        chunks,
    };
    validate_upload(&stored, &upload).expect("evidence validates");
    println!("\nminute {wanted} solicited: evidence hold placed, upload validated ✔");

    // The hold survives further driving (the card keeps rolling over).
    for minute in 6..9u64 {
        let scene = SyntheticScene::generate(&mut rng, 160, 120, 1);
        for s in 0..SECONDS_PER_VP {
            let t = minute * SECONDS_PER_VP + s;
            cam.record_second(
                &mut rng,
                &scene.frame.data,
                GeoPos::new(t as f64 * 11.0, 0.0),
                t,
            );
        }
        cam.end_minute(&mut rng, &StraightLine);
    }
    assert!(cam.storage().get(wanted).is_some());
    println!("after 3 more minutes of driving the held segment is still on the card ✔");
    println!("\ndashcam day complete ✔");
}
