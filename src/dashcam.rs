//! A ViewMap-enabled dashcam: the full on-vehicle stack.
//!
//! Ties together the pieces the paper's prototype runs on a Raspberry Pi
//! (Section 7.1, Fig. 18): per-frame realtime license-plate blurring
//! (`vm-vision`), the per-second cascaded view-digest chain and neighbor
//! table (`viewmap-core`), guard-VP fabrication at each minute boundary,
//! and ring-buffer segment storage with evidence holds (`vm-vision`'s
//! [`SegmentStore`]).
//!
//! One [`Dashcam::record_second`] call = one simulated second: blur the
//! frame, append the anonymized bytes to the current segment, extend the
//! hash chain, and return the VD to broadcast over DSRC.

use rand::Rng;
use viewmap_core::guard::{create_guards, Directions, GuardConfig};
use viewmap_core::neighbor::Accept;
use viewmap_core::types::{GeoPos, SECONDS_PER_VP};
use viewmap_core::vd::ViewDigest;
use viewmap_core::vp::{FinalizedMinute, ViewProfile, VpBuilder, VpKind};
use vm_vision::{BlurPipeline, Segment, SegmentStore};

/// Dashcam configuration.
#[derive(Clone, Copy, Debug)]
pub struct DashcamConfig {
    /// SD-card capacity in bytes (64 GB keeps 2–3 weeks of video per the
    /// paper; tests use much smaller values).
    pub storage_bytes: usize,
    /// Guard-VP rate α.
    pub alpha: f64,
    /// Frame width in pixels.
    pub width: usize,
    /// Frame height in pixels.
    pub height: usize,
}

impl Default for DashcamConfig {
    fn default() -> Self {
        DashcamConfig {
            storage_bytes: 64 * 1024 * 1024 * 1024,
            alpha: 0.1,
            width: 640,
            height: 480,
        }
    }
}

/// Everything a dashcam produced at a minute boundary.
pub struct MinuteOutput {
    /// The finalized actual VP (plus secret and neighbor records).
    pub finalized: FinalizedMinute,
    /// Guard VPs to upload and then forget.
    pub guards: Vec<ViewProfile>,
    /// Minutes evicted from the ring buffer to make room.
    pub evicted_minutes: Vec<u64>,
}

/// A ViewMap-enabled dashcam.
pub struct Dashcam {
    cfg: DashcamConfig,
    pipeline: BlurPipeline,
    store: SegmentStore,
    builder: Option<VpBuilder>,
    current_chunks: Vec<Vec<u8>>,
    current_minute: u64,
}

impl Dashcam {
    /// Power on the dashcam.
    pub fn new(cfg: DashcamConfig) -> Self {
        Dashcam {
            pipeline: BlurPipeline::new(),
            store: SegmentStore::new(cfg.storage_bytes),
            builder: None,
            current_chunks: Vec::with_capacity(SECONDS_PER_VP as usize),
            current_minute: 0,
            cfg,
        }
    }

    /// Plates blurred so far (diagnostics).
    pub fn plates_blurred(&self) -> usize {
        self.pipeline.plates_blurred
    }

    /// The on-board segment store.
    pub fn storage(&self) -> &SegmentStore {
        &self.store
    }

    /// Mutable access to the store (for evidence holds).
    pub fn storage_mut(&mut self) -> &mut SegmentStore {
        &mut self.store
    }

    /// Record one second: blur the raw camera frame, store the anonymized
    /// bytes, extend the cascaded chain, and return the VD to broadcast.
    ///
    /// `time` is the absolute second; a new VP (and secret) starts
    /// automatically on each minute boundary.
    pub fn record_second<R: Rng + ?Sized>(
        &mut self,
        rng: &mut R,
        raw_frame: &[u8],
        loc: GeoPos,
        time: u64,
    ) -> ViewDigest {
        if self.builder.is_none() {
            self.current_minute = time / SECONDS_PER_VP;
            self.builder = Some(VpBuilder::new(
                rng,
                self.current_minute * SECONDS_PER_VP,
                loc,
                VpKind::Actual,
            ));
            self.current_chunks.clear();
        }
        // Realtime visual anonymization happens *before* the bytes are
        // hashed or stored — only content-anonymized video exists in
        // ViewMap (Section 4, "visual anonymization").
        let (blurred, _timings) = self
            .pipeline
            .process(raw_frame, self.cfg.width, self.cfg.height);
        let chunk = blurred.data;
        let vd = self
            .builder
            .as_mut()
            .expect("builder initialized above")
            .record_second(&chunk, loc);
        self.current_chunks.push(chunk);
        vd
    }

    /// Offer a neighbor's broadcast VD.
    pub fn hear_vd(&mut self, vd: ViewDigest, now: u64, my_loc: GeoPos) -> Accept {
        match self.builder.as_mut() {
            Some(b) => b.accept_neighbor_vd(vd, now, my_loc),
            None => Accept::Rejected(viewmap_core::neighbor::RejectReason::StaleTime),
        }
    }

    /// Seconds recorded in the current minute.
    pub fn seconds_recorded(&self) -> u16 {
        self.builder.as_ref().map_or(0, |b| b.seconds())
    }

    /// Finish the minute: finalize the VP, fabricate guard VPs, and file
    /// the anonymized segment into the ring buffer.
    ///
    /// Panics if nothing was recorded this minute.
    pub fn end_minute<R: Rng + ?Sized, D: Directions>(
        &mut self,
        rng: &mut R,
        directions: &D,
    ) -> MinuteOutput {
        let builder = self.builder.take().expect("a minute is in progress");
        let mut finalized = builder.finalize();
        let guard_cfg = GuardConfig {
            alpha: self.cfg.alpha,
            ..GuardConfig::default()
        };
        let guards = if self.cfg.alpha > 0.0 {
            create_guards(rng, &mut finalized, directions, &guard_cfg)
        } else {
            Vec::new()
        };
        let segment = Segment {
            minute: self.current_minute,
            chunks: std::mem::take(&mut self.current_chunks),
            protected: false,
        };
        let evicted_minutes = self.store.insert(segment).unwrap_or_else(|seg| {
            // A full card of protected evidence: drop the new segment
            // (the VP still exists; the video is simply not retained).
            drop(seg);
            Vec::new()
        });
        MinuteOutput {
            finalized,
            guards,
            evicted_minutes,
        }
    }

    /// Answer a solicitation: if the segment for `minute` is still on the
    /// card, place an evidence hold and return its chunks for upload.
    pub fn answer_solicitation(&mut self, minute: u64) -> Option<Vec<Vec<u8>>> {
        self.store.protect(minute);
        self.store.get(minute).map(|s| s.chunks.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use viewmap_core::guard::StraightLine;
    use viewmap_core::solicit::{validate_upload, VideoUpload};
    use vm_vision::SyntheticScene;

    fn small_cfg() -> DashcamConfig {
        DashcamConfig {
            storage_bytes: 3 * 60 * 64 * 48, // three minutes of 64×48 frames
            alpha: 0.1,
            width: 64,
            height: 48,
        }
    }

    fn drive_minute(
        cam: &mut Dashcam,
        rng: &mut StdRng,
        start: u64,
        other: Option<&mut Dashcam>,
    ) -> MinuteOutput {
        let scene = SyntheticScene::generate(rng, 64, 48, 1);
        let mut other = other;
        for s in 0..SECONDS_PER_VP {
            let t = start + s + 1;
            let loc = GeoPos::new((start + s) as f64 * 10.0, 0.0);
            let vd = cam.record_second(rng, &scene.frame.data, loc, start + s);
            if let Some(o) = other.as_deref_mut() {
                let oloc = GeoPos::new((start + s) as f64 * 10.0, 40.0);
                let ovd = o.record_second(rng, &scene.frame.data, oloc, start + s);
                o.hear_vd(vd, t, oloc);
                cam.hear_vd(ovd, t, loc);
            }
        }
        cam.end_minute(rng, &StraightLine)
    }

    #[test]
    fn recorded_minute_validates_against_its_own_vp() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut cam = Dashcam::new(small_cfg());
        let out = drive_minute(&mut cam, &mut rng, 0, None);
        let vp = out.finalized.profile.clone().into_stored();
        let chunks = cam.answer_solicitation(0).expect("segment retained");
        let upload = VideoUpload {
            vp_id: vp.id,
            chunks,
        };
        assert_eq!(validate_upload(&vp, &upload), Ok(()));
    }

    #[test]
    fn two_dashcams_in_range_link() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut a = Dashcam::new(small_cfg());
        let mut b = Dashcam::new(small_cfg());
        let out_a = drive_minute(&mut a, &mut rng, 0, Some(&mut b));
        let out_b = b.end_minute(&mut rng, &StraightLine);
        let sa = out_a.finalized.profile.into_stored();
        let sb = out_b.finalized.profile.into_stored();
        assert!(sa.mutually_linked(&sb));
        // Guards were fabricated for the observed neighbor.
        assert_eq!(out_a.guards.len(), 1);
    }

    #[test]
    fn ring_buffer_rolls_over_and_holds_evidence() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut cam = Dashcam::new(small_cfg());
        let mut outputs = Vec::new();
        for m in 0..5 {
            outputs.push(drive_minute(&mut cam, &mut rng, m * 60, None));
        }
        // Capacity is 3 minutes: the first two minutes were evicted.
        assert!(cam.storage().len() <= 3);
        assert!(cam.answer_solicitation(0).is_none(), "minute 0 overwritten");
        // Minute 4 is present; soliciting it places an evidence hold.
        assert!(cam.answer_solicitation(4).is_some());
        let mut rng2 = StdRng::seed_from_u64(4);
        for m in 5..8 {
            drive_minute(&mut cam, &mut rng2, m * 60, None);
        }
        assert!(
            cam.storage().get(4).is_some(),
            "evidence-held minute must survive rollover"
        );
    }

    #[test]
    fn frames_are_anonymized_before_hashing() {
        // The chunk committed by the VD chain is the *blurred* frame:
        // validate that the stored segment differs from the raw frame
        // wherever a plate was.
        let mut rng = StdRng::seed_from_u64(5);
        let mut cam = Dashcam::new(DashcamConfig {
            storage_bytes: 32 * 1024 * 1024, // one 640×480 minute is ~18 MB
            alpha: 0.0,
            width: 640,
            height: 480,
        });
        let scene = SyntheticScene::generate(&mut rng, 640, 480, 2);
        cam.record_second(&mut rng, &scene.frame.data, GeoPos::new(0.0, 0.0), 0);
        for s in 1..SECONDS_PER_VP {
            cam.record_second(&mut rng, &scene.frame.data, GeoPos::new(s as f64, 0.0), s);
        }
        let _ = cam.end_minute(&mut rng, &StraightLine);
        assert!(cam.plates_blurred() > 0, "plates should have been found");
        let stored = cam.storage().get(0).expect("segment stored");
        assert_ne!(
            stored.chunks[0], scene.frame.data,
            "stored bytes must be the anonymized frame"
        );
    }
}
