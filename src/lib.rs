//! # ViewMap — full-system reproduction of NSDI '17
//!
//! *"ViewMap: Sharing Private In-Vehicle Dashcam Videos"* (Kim, Lim, Yu,
//! Kim, Kim, Lee — Hanyang University, NSDI 2017), rebuilt as a Rust
//! workspace: the protocol itself plus every substrate its evaluation
//! rests on.
//!
//! This facade crate re-exports the workspace members under one roof and
//! hosts the runnable examples and cross-crate integration tests:
//!
//! * [`core`] — view digests, view profiles, guard VPs,
//!   viewmap construction (cold four-phase engine plus the incremental
//!   maintainer behind `ViewMapServer::investigate_maintained`),
//!   TrustRank verification, solicitation, blind-signature rewarding,
//!   the tracking adversary, attack toolkit.
//! * [`crypto`] — SHA-256, big integers, RSA blind signatures
//!   (all from scratch).
//! * [`geo`] — planar geometry, road networks, routing, building
//!   fields, spatial indices.
//! * [`mobility`] — the SUMO-substitute traffic simulator.
//! * [`radio`] — the DSRC channel model with LOS/NLOS structure.
//! * [`sim`] — the integrated protocol simulation (ns-3
//!   substitute) and the controlled linkage experiments.
//! * [`vision`] — realtime license-plate blurring.
//! * [`store`] — the durable append-log VP store with crash
//!   recovery (`ViewMapServer::open`).
//! * [`service`] — the concurrent TCP front-end (wire
//!   protocol, worker-pool server, pipelining client, role fencing).
//! * [`repl`] — primary→follower replication: WAL log
//!   shipping, acked commit watermark, catch-up, promotion.
//! * [`obs`] — the zero-dependency telemetry core: counters,
//!   gauges, log-bucketed latency histograms, registry snapshots
//!   (the `STATS` wire exposition), and the structured event journal.
//!
//! ## Example
//!
//! ```
//! use viewmap::core::types::GeoPos;
//! use viewmap::core::vp::exchange_minute;
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! // Two vehicles drive side by side for a minute, exchanging view
//! // digests over DSRC; their view profiles end up mutually viewlinked.
//! let mut rng = StdRng::seed_from_u64(7);
//! let (a, b) = exchange_minute(
//!     &mut rng,
//!     0,
//!     |s| GeoPos::new(s as f64 * 12.0, 0.0),
//!     |s| GeoPos::new(s as f64 * 12.0, 40.0),
//! );
//! let (a, b) = (a.profile.into_stored(), b.profile.into_stored());
//! assert!(a.mutually_linked(&b));
//! ```

#![forbid(unsafe_code)]

pub use viewmap_core as core;
pub use vm_crypto as crypto;
pub use vm_geo as geo;
pub use vm_mobility as mobility;
pub use vm_obs as obs;
pub use vm_radio as radio;
pub use vm_repl as repl;
pub use vm_service as service;
pub use vm_sim as sim;
pub use vm_store as store;
pub use vm_vision as vision;

pub mod dashcam;
pub use dashcam::{Dashcam, DashcamConfig, MinuteOutput};
